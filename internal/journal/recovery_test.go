package journal

// Crash-recovery matrix: every way a segment can be damaged — truncation
// at and around every record boundary (torn writes), and a bit flip in
// every region of a record (length, CRC, seq, payload) and the segment
// header — asserting the typed-error contract: damage at the tail of the
// final segment recovers cleanly to the longest intact prefix, damage
// over durable data is a hard typed error, and recovery is physical (a
// reopened journal accepts new appends after truncating the tail).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildJournal writes n reviews into a fresh journal under dir and
// returns the sorted segment paths.
func buildJournal(t *testing.T, dir string, n int, segMax int64) []string {
	t.Helper()
	j, err := Open(dir, Options{SegmentMaxBytes: segMax})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, n)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	paths, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	return paths
}

// copyJournal clones a journal directory into a fresh temp dir.
func copyJournal(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "j")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recordBoundaries returns the byte offsets of every record boundary in a
// segment file (starting after the header, ending at EOF), plus the
// record count before each boundary.
func recordBoundaries(t *testing.T, path string) []int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int{segmentHeaderLen}
	off := segmentHeaderLen
	for off < len(data) {
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += recordHeaderLen + payloadLen
		if off > len(data) {
			t.Fatalf("segment %s is already damaged", path)
		}
		bounds = append(bounds, off)
	}
	return bounds
}

// TestTruncationMatrix cuts the final segment at every record boundary
// ± 1 byte and asserts prefix recovery with the right typed error.
func TestTruncationMatrix(t *testing.T) {
	pristine := filepath.Join(t.TempDir(), "pristine")
	paths := buildJournal(t, pristine, 24, 512)
	if len(paths) < 2 {
		t.Fatalf("need multiple segments, got %d", len(paths))
	}
	last := paths[len(paths)-1]
	bounds := recordBoundaries(t, last)
	if len(bounds) < 3 {
		t.Fatalf("final segment has %d records; matrix needs at least 2", len(bounds)-1)
	}
	// Records living in the earlier segments all survive any damage to
	// the final one.
	priorRecords := 0
	for _, p := range paths[:len(paths)-1] {
		priorRecords += len(recordBoundaries(t, p)) - 1
	}

	for bi, bound := range bounds {
		for _, delta := range []int{-1, 0, +1} {
			cut := bound + delta
			if cut < segmentHeaderLen || cut > bounds[len(bounds)-1] {
				continue // before the header or past EOF: not a truncation
			}
			name := fmt.Sprintf("boundary%d%+d", bi, delta)
			t.Run(name, func(t *testing.T) {
				dir := copyJournal(t, pristine)
				target := filepath.Join(dir, filepath.Base(last))
				if err := os.Truncate(target, int64(cut)); err != nil {
					t.Fatal(err)
				}
				// Survivors: every record fully before the cut.
				wantRecords := priorRecords + bi
				if delta == -1 {
					wantRecords = priorRecords + bi - 1
				}
				wantDamage := delta != 0

				got, stats := replayAll(t, dir)
				if len(got) != wantRecords {
					t.Fatalf("replayed %d records, want %d", len(got), wantRecords)
				}
				for i, rv := range got {
					if rv != testReview(i) {
						t.Fatalf("record %d diverged after truncation", i)
					}
				}
				if wantDamage {
					if !errors.Is(stats.TailErr, ErrTornRecord) {
						t.Fatalf("TailErr = %v, want ErrTornRecord", stats.TailErr)
					}
					if stats.DroppedBytes <= 0 {
						t.Fatalf("DroppedBytes = %d after a torn cut", stats.DroppedBytes)
					}
				} else if stats.TailErr != nil {
					t.Fatalf("boundary cut reported damage: %v", stats.TailErr)
				}

				// Open performs physical recovery and keeps accepting writes.
				j, err := Open(dir, Options{})
				if err != nil {
					t.Fatalf("open after truncation: %v", err)
				}
				if wantDamage && !errors.Is(j.Recovery().Err, ErrTornRecord) {
					t.Fatalf("recovery err = %v, want ErrTornRecord", j.Recovery().Err)
				}
				if got := j.NextSeq(); got != uint64(wantRecords+1) {
					t.Fatalf("recovered NextSeq = %d, want %d", got, wantRecords+1)
				}
				if _, err := j.Append(testReview(999)); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
				reGot, reStats := replayAll(t, dir)
				if len(reGot) != wantRecords+1 || reStats.TailErr != nil {
					t.Fatalf("after recovery+append: %d records (tail %v), want %d clean",
						len(reGot), reStats.TailErr, wantRecords+1)
				}
			})
		}
	}
}

// flipByte flips one bit of the byte at off in path.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBitFlipMatrix corrupts one byte in every structural region of the
// final segment's second record and checks the typed classification and
// prefix recovery.
func TestBitFlipMatrix(t *testing.T) {
	pristine := filepath.Join(t.TempDir(), "pristine")
	paths := buildJournal(t, pristine, 24, 512)
	last := paths[len(paths)-1]
	bounds := recordBoundaries(t, last)
	if len(bounds) < 3 {
		t.Fatalf("final segment has %d records; need at least 2", len(bounds)-1)
	}
	priorRecords := 0
	for _, p := range paths[:len(paths)-1] {
		priorRecords += len(recordBoundaries(t, p)) - 1
	}
	rec := bounds[1]                 // second record of the final segment (durable bytes follow)
	lastRec := bounds[len(bounds)-2] // final record (ends at EOF)
	finalRecords := len(bounds) - 1

	// Damage to a record with durable bytes after it can never be a torn
	// write, so it must be a hard typed error — never a silent drop of
	// the records behind it. (A flipped length is the one ambiguous case:
	// if it makes the record run past EOF it is indistinguishable from a
	// torn write and recovers; if it stays in-file the checksum catches
	// it as hard mid-file damage.)
	midCases := []struct {
		name string
		off  int
	}{
		{"crc", rec + 4},
		{"seq", rec + 8},
		{"payload", rec + recordHeaderLen + 2},
	}
	for _, tc := range midCases {
		t.Run("durable "+tc.name, func(t *testing.T) {
			dir := copyJournal(t, pristine)
			flipByte(t, filepath.Join(dir, filepath.Base(last)), tc.off)
			if _, err := Replay(dir, nil); !errors.Is(err, ErrJournalChecksum) {
				t.Fatalf("replay err = %v, want hard ErrJournalChecksum", err)
			}
			if _, err := Open(dir, Options{}); !errors.Is(err, ErrJournalChecksum) {
				t.Fatalf("open err = %v, want hard ErrJournalChecksum", err)
			}
		})
	}

	t.Run("durable length", func(t *testing.T) {
		dir := copyJournal(t, pristine)
		flipByte(t, filepath.Join(dir, filepath.Base(last)), rec+0)
		_, err := Replay(dir, nil)
		switch {
		case err != nil && errors.Is(err, ErrJournalChecksum):
			// Flip landed in-file: hard damage, Open must refuse too.
			if _, err := Open(dir, Options{}); !errors.Is(err, ErrJournalChecksum) {
				t.Fatalf("open err = %v, want ErrJournalChecksum", err)
			}
		case err == nil:
			// Flip declared past EOF: indistinguishable from a torn write.
			got, stats := replayAll(t, dir)
			if len(got) != priorRecords+1 || !errors.Is(stats.TailErr, ErrTornRecord) {
				t.Fatalf("torn-shaped length flip: %d records, tail %v", len(got), stats.TailErr)
			}
		default:
			t.Fatalf("replay err = %v", err)
		}
	})

	// Damage to the final record — the only one a real torn write can
	// touch — recovers cleanly to the prefix.
	t.Run("final record payload", func(t *testing.T) {
		dir := copyJournal(t, pristine)
		flipByte(t, filepath.Join(dir, filepath.Base(last)), lastRec+recordHeaderLen+2)
		got, stats := replayAll(t, dir)
		if want := priorRecords + finalRecords - 1; len(got) != want {
			t.Fatalf("replayed %d records, want %d", len(got), want)
		}
		if !errors.Is(stats.TailErr, ErrJournalChecksum) {
			t.Fatalf("TailErr = %v, want ErrJournalChecksum", stats.TailErr)
		}
		j, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open after final-record flip: %v", err)
		}
		if got := j.NextSeq(); got != uint64(priorRecords+finalRecords) {
			t.Fatalf("NextSeq = %d, want %d", got, priorRecords+finalRecords)
		}
		j.Close()
	})

	t.Run("header magic", func(t *testing.T) {
		dir := copyJournal(t, pristine)
		flipByte(t, filepath.Join(dir, filepath.Base(last)), 3)
		if _, err := Replay(dir, nil); !errors.Is(err, ErrJournalFormat) {
			t.Fatalf("flipped magic: err = %v, want ErrJournalFormat", err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrJournalFormat) {
			t.Fatalf("open with flipped magic: err = %v, want ErrJournalFormat", err)
		}
	})

	t.Run("non-final segment is hard damage", func(t *testing.T) {
		dir := copyJournal(t, pristine)
		firstBounds := recordBoundaries(t, filepath.Join(dir, filepath.Base(paths[0])))
		flipByte(t, filepath.Join(dir, filepath.Base(paths[0])), firstBounds[0]+recordHeaderLen+1)
		if _, err := Replay(dir, nil); !errors.Is(err, ErrJournalChecksum) {
			t.Fatalf("durable-position damage: err = %v, want ErrJournalChecksum", err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrJournalChecksum) {
			t.Fatalf("open over durable damage: err = %v, want ErrJournalChecksum", err)
		}
		// Truncating a non-final segment is equally hard damage.
		dir2 := copyJournal(t, pristine)
		b2 := recordBoundaries(t, filepath.Join(dir2, filepath.Base(paths[0])))
		if err := os.Truncate(filepath.Join(dir2, filepath.Base(paths[0])), int64(b2[len(b2)-1]-3)); err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(dir2, nil); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("truncated non-final segment: err = %v, want ErrTornRecord", err)
		}
	})

	t.Run("torn segment header is recoverable", func(t *testing.T) {
		// A crash during segment roll leaves a short header in the newest
		// file; no acknowledged record can live there, so recovery drops
		// the file and keeps appending into the chain.
		dir := copyJournal(t, pristine)
		allRecords := priorRecords + len(bounds) - 1
		torn := segPath(dir, uint64(allRecords+1))
		if err := os.WriteFile(torn, []byte(SegmentMagic[:5]), 0o644); err != nil {
			t.Fatal(err)
		}
		got, stats := replayAll(t, dir)
		if len(got) != allRecords || !errors.Is(stats.TailErr, ErrTornRecord) {
			t.Fatalf("torn roll: %d records (tail %v), want %d with ErrTornRecord", len(got), stats.TailErr, allRecords)
		}
		j, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("open after torn roll: %v", err)
		}
		if _, err := os.Stat(torn); !os.IsNotExist(err) {
			t.Fatalf("torn segment file not dropped: %v", err)
		}
		if got := j.NextSeq(); got != uint64(allRecords+1) {
			t.Fatalf("NextSeq = %d, want %d", got, allRecords+1)
		}
		j.Close()
	})
}

// TestSIGKILLDuringAppend crash-kills a real ingestion process mid-write
// (re-executing this test binary as the worker) and asserts the recovery
// contract: no load error, and every acknowledged append survives as a
// contiguous prefix — a process SIGKILL cannot unwrite bytes the OS
// already accepted; only the in-flight record may tear.
func TestSIGKILLDuringAppend(t *testing.T) {
	if dir := os.Getenv("JOURNAL_CRASH_CHILD_DIR"); dir != "" {
		crashChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short")
	}
	dir := filepath.Join(t.TempDir(), "j")
	cmd := exec.Command(os.Args[0], "-test.run", "TestSIGKILLDuringAppend")
	cmd.Env = append(os.Environ(), "JOURNAL_CRASH_CHILD_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var lastAcked uint64
	sc := bufio.NewScanner(stdout)
	deadline := time.Now().Add(30 * time.Second)
	for sc.Scan() {
		if s, ok := strings.CutPrefix(sc.Text(), "acked "); ok {
			if seq, err := strconv.ParseUint(s, 10, 64); err == nil {
				lastAcked = seq
			}
		}
		if lastAcked >= 64 || time.Now().After(deadline) {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	_ = cmd.Wait()
	if lastAcked < 64 {
		t.Fatalf("worker only acknowledged %d appends", lastAcked)
	}

	got, stats := replayAll(t, dir)
	if uint64(len(got)) < lastAcked {
		t.Fatalf("recovered %d records, %d were acknowledged", len(got), lastAcked)
	}
	for i, rv := range got {
		if rv != testReview(i) {
			t.Fatalf("recovered record %d diverged", i)
		}
	}
	if stats.TailErr != nil {
		t.Logf("torn tail dropped: %d bytes (%v)", stats.DroppedBytes, stats.TailErr)
	}
	// The journal keeps working after the crash.
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after SIGKILL: %v", err)
	}
	if _, err := j.Append(testReview(len(got))); err != nil {
		t.Fatalf("append after SIGKILL recovery: %v", err)
	}
	j.Close()
}

// crashChild is the worker half of TestSIGKILLDuringAppend.
func crashChild(dir string) {
	j, err := Open(dir, Options{SyncEvery: 4, SegmentMaxBytes: 4 << 10})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	for i := 0; ; i++ {
		seq, err := j.Append(testReview(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash child append:", err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "acked %d\n", seq)
		w.Flush()
	}
}
