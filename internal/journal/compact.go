package journal

// Snapshot integration: the journal lives in a directory next to the
// snapshot artifact it extends (Dir), a serving process loads the pair
// with LoadWithJournal (snapshot → replay → serve), and Compact folds the
// journal back into a fresh snapshot so the delta log stays short and a
// future cold start pays one load instead of a long replay.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// Dir returns the canonical journal directory for a snapshot artifact:
// "<snapshot>.journal" next to the file, so the pair travels together.
func Dir(snapshotPath string) string { return snapshotPath + ".journal" }

// ApplyStats extends ReplayStats with what application did to the
// database.
type ApplyStats struct {
	ReplayStats
	// Applied counts records applied to the database; Skipped counts
	// records whose review id was already ingested — the signature of a
	// crash between a compaction's snapshot rename and its journal
	// truncation, which idempotent replay absorbs.
	Applied int
	Skipped int
}

// ApplyAll replays the journal directory into a loaded database through
// the deterministic core.ApplyReview delta path, in journal order.
// Already-ingested reviews are skipped (idempotent replay). The caller
// must hold whatever writer exclusion the database requires.
func ApplyAll(db *core.DB, dir string) (ApplyStats, error) {
	var st ApplyStats
	stats, err := Replay(dir, func(seq uint64, rv Review) error {
		if db.HasReview(rv.ID) {
			st.Skipped++
			return nil
		}
		if err := db.ApplyReview(core.ReviewData{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
			Day: rv.Day, Text: rv.Text,
		}); err != nil {
			return fmt.Errorf("journal: apply seq %d (review %s): %w", seq, rv.ID, err)
		}
		st.Applied++
		return nil
	})
	st.ReplayStats = stats
	return st, err
}

// LoadWithJournal is the serving cold-start path of an enriched database:
// load the snapshot, then replay its journal (if any) through ApplyReview.
// The result answers queries byte-identically to a live database that
// ingested the same reviews in the same order — the replay-vs-rebuild
// contract enforced by the journal e2e tests.
func LoadWithJournal(snapshotPath string) (*core.DB, *snapshot.Meta, ApplyStats, error) {
	db, meta, err := snapshot.Load(snapshotPath)
	if err != nil {
		return nil, nil, ApplyStats{}, err
	}
	st, err := ApplyAll(db, Dir(snapshotPath))
	if err != nil {
		return nil, nil, st, err
	}
	return db, meta, st, nil
}

// lockForCompaction takes the journal directory's exclusive lock (the
// same lock a serving Journal holds) so compaction can never replay and
// then delete a journal out from under a live writer — the writer would
// keep acknowledging appends into unlinked segment files, silently
// losing every one of them at its next restart. A missing directory
// needs no lock; a held lock is a hard error telling the operator to
// stop the server first. The returned closer releases the lock (nil is
// returned for a missing directory and is safe to call).
func lockForCompaction(dir string) (func(), error) {
	if _, err := os.Stat(dir); err != nil {
		if os.IsNotExist(err) {
			return func() {}, nil
		}
		return nil, fmt.Errorf("journal: compact: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: compact: is a server still serving this journal? %w", err)
	}
	if lock == nil {
		return func() {}, nil
	}
	return func() { lock.Close() }, nil
}

// Compact folds a snapshot and its journal into a fresh snapshot at
// outPath (written atomically, shard identity preserved), then — when the
// compacted artifact replaces the original in place — removes the folded
// journal. The journal directory's lock is held throughout, so a live
// server still appending to it makes compaction fail fast instead of
// deleting segments out from under acknowledged writes. The ordering
// makes a crash at any point safe: the new snapshot only becomes visible
// complete (temp file + rename), and if the process dies before the
// journal is removed, replay skips the already-folded reviews.
func Compact(snapshotPath, outPath string) (*snapshot.Meta, ApplyStats, error) {
	unlock, err := lockForCompaction(Dir(snapshotPath))
	if err != nil {
		return nil, ApplyStats{}, err
	}
	defer unlock()
	db, loadMeta, st, err := LoadWithJournal(snapshotPath)
	if err != nil {
		return nil, st, err
	}
	meta, err := snapshot.SaveShard(outPath, db, loadMeta.Shard)
	if err != nil {
		return nil, st, fmt.Errorf("journal: compact: %w", err)
	}
	if samePath(outPath, snapshotPath) {
		if err := os.RemoveAll(Dir(snapshotPath)); err != nil {
			return nil, st, fmt.Errorf("journal: compact: drop folded journal: %w", err)
		}
	}
	return meta, st, nil
}

// samePath reports whether two path spellings name the same file, so an
// in-place compaction spelled "./x.snap" vs "x.snap" still drops its
// folded journal instead of replaying (and growing) it forever.
func samePath(a, b string) bool {
	aa, errA := filepath.Abs(a)
	bb, errB := filepath.Abs(b)
	if errA != nil || errB != nil {
		return filepath.Clean(a) == filepath.Clean(b)
	}
	if aa == bb {
		return true
	}
	fa, errA := os.Stat(aa)
	fb, errB := os.Stat(bb)
	return errA == nil && errB == nil && os.SameFile(fa, fb)
}

// hasRecords cheaply probes whether a journal directory holds any record
// bytes (any segment larger than its header), without replaying it.
func hasRecords(dir string) (bool, error) {
	paths, _, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || isNotDir(err) {
			return false, nil
		}
		return false, err
	}
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return false, err
		}
		if fi.Size() > segmentHeaderLen {
			return true, nil
		}
	}
	return false, nil
}

// ShardCompaction reports one shard's outcome in CompactManifest.
type ShardCompaction struct {
	Index   int
	Applied int
	Skipped int
	// Digest is the shard snapshot's content digest after compaction.
	Digest string
}

// CompactManifest folds every shard's journal of a sharded build into a
// fresh per-shard snapshot and refreshes the manifest's content digests.
// Shards without journal records are left untouched (their recorded
// digests stay valid — the journal is a separate file, so live ingestion
// never invalidates the base snapshot's digest).
//
// Crash safety: each shard is folded with the ordering snapshot rename →
// manifest digest refresh → journal removal, and the manifest is
// rewritten (atomically) after every shard rather than once at the end,
// so a crash leaves at most one shard with a stale digest and its
// journal intact. Re-running CompactManifest heals that window: the
// shard snapshot is loaded without manifest-digest verification —
// compaction *produces* the digests, so it cannot demand they already
// match; the container's per-section CRCs still guard integrity — and
// replay is idempotent (already-folded reviews skip by id).
func CompactManifest(manifestPath string) (*snapshot.Manifest, []ShardCompaction, error) {
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	var out []ShardCompaction
	for i := range m.Shard {
		shardPath := snapshot.ShardPath(manifestPath, m.Shard[i])
		unlock, err := lockForCompaction(Dir(shardPath))
		if err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: %w", i, err)
		}
		defer unlock()
		pending, err := hasRecords(Dir(shardPath))
		if err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: %w", i, err)
		}
		if !pending {
			// Nothing to fold; drop an empty-but-present journal dir so the
			// fleet's disk layout stays canonical.
			_ = os.RemoveAll(Dir(shardPath))
			continue
		}
		db, loadMeta, err := snapshot.Load(shardPath)
		if err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: %w", i, err)
		}
		if loadMeta.Shard == nil || loadMeta.Shard.Index != i || loadMeta.Shard.Count != m.Shards {
			return nil, out, fmt.Errorf("journal: shard %d: snapshot %s does not identify as shard %d/%d",
				i, shardPath, i, m.Shards)
		}
		st, err := ApplyAll(db, Dir(shardPath))
		if err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: %w", i, err)
		}
		meta, err := snapshot.SaveShard(shardPath, db, loadMeta.Shard)
		if err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: compact: %w", i, err)
		}
		m.Shard[i].SnapshotSHA256 = meta.SHA256
		m.Shard[i].SnapshotBytes = meta.FileBytes
		m.CreatedUnix = time.Now().Unix()
		if err := snapshot.WriteManifest(manifestPath, m); err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: manifest refresh: %w", i, err)
		}
		if err := os.RemoveAll(Dir(shardPath)); err != nil {
			return nil, out, fmt.Errorf("journal: shard %d: drop folded journal: %w", i, err)
		}
		out = append(out, ShardCompaction{Index: i, Applied: st.Applied, Skipped: st.Skipped, Digest: meta.SHA256})
	}
	return m, out, nil
}
