package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// tailFixture appends n reviews to a fresh journal with small segments so
// the scan paths cross segment boundaries.
func tailFixture(t *testing.T, n int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "wal")
	j, err := Open(dir, Options{SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < n; i++ {
		if _, err := j.Append(tailReview(i)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func tailReview(i int) Review {
	return Review{
		ID:       fmt.Sprintf("r-%04d", i),
		EntityID: fmt.Sprintf("e-%04d", i%7),
		Reviewer: "tail",
		Day:      i,
		Text:     fmt.Sprintf("review number %d with some text to fill the record", i),
	}
}

func TestStatDir(t *testing.T) {
	dir := tailFixture(t, 25)
	st, err := StatDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 25 || st.LastSeq != 25 {
		t.Fatalf("stat = %+v, want 25 records through seq 25", st)
	}
	if st.Segments < 2 {
		t.Fatalf("fixture should roll segments, got %d", st.Segments)
	}
	if st.PrefixHash == "" || st.TailErr != nil {
		t.Fatalf("stat = %+v, want hash and clean tail", st)
	}

	// The hash chain is injective over prefixes: every prefix differs.
	seen := map[string]uint64{}
	for k := uint64(1); k <= 25; k++ {
		h, last, err := PrefixHashAt(dir, k)
		if err != nil {
			t.Fatal(err)
		}
		if last != k {
			t.Fatalf("PrefixHashAt(%d) covered seq %d", k, last)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("prefix hash at %d collides with %d", k, prev)
		}
		seen[h] = k
	}
	// The full hash equals the bounded hash at the last sequence and at
	// any bound beyond it.
	full, last, err := PrefixHashAt(dir, 999)
	if err != nil || last != 25 || full != st.PrefixHash {
		t.Fatalf("PrefixHashAt(999) = (%s, %d, %v), want full-journal hash", full, last, err)
	}
}

func TestStatDirMissing(t *testing.T) {
	st, err := StatDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 0 || st.LastSeq != 0 || st.Segments != 0 {
		t.Fatalf("missing dir stat = %+v, want empty", st)
	}
	if st.PrefixHash == "" {
		t.Fatal("empty journal should still report the empty-chain hash")
	}
}

// TestPrefixHashMatchesAcrossJournals is the property repair relies on:
// two journals holding the same record sequence hash identically even
// when their segment boundaries differ.
func TestPrefixHashMatchesAcrossJournals(t *testing.T) {
	a := tailFixture(t, 20)
	bDir := filepath.Join(t.TempDir(), "wal-b")
	j, err := Open(bDir, Options{SegmentMaxBytes: DefaultSegmentMaxBytes}) // one big segment
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // a prefix of a's records
		if _, err := j.Append(tailReview(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	bHash, bLast, err := PrefixHashAt(bDir, 0)
	if err != nil || bLast != 12 {
		t.Fatalf("b hash: (%d, %v)", bLast, err)
	}
	aHash, _, err := PrefixHashAt(a, 12)
	if err != nil {
		t.Fatal(err)
	}
	if aHash != bHash {
		t.Fatal("equal record prefixes must hash equally regardless of segmentation")
	}
	aFull, _, _ := PrefixHashAt(a, 0)
	if aFull == bHash {
		t.Fatal("a's full journal must not hash like its 12-record prefix")
	}
}

func TestReplayFrom(t *testing.T) {
	dir := tailFixture(t, 30)
	for _, from := range []uint64{1, 2, 15, 29, 30, 31} {
		var got []uint64
		stats, err := ReplayFrom(dir, from, func(seq uint64, rv Review) error {
			got = append(got, seq)
			if want := tailReview(int(seq - 1)); rv != want {
				t.Fatalf("seq %d decoded %+v, want %+v", seq, rv, want)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("from %d: %v", from, err)
		}
		want := 30 - int(from) + 1
		if want < 0 {
			want = 0
		}
		if len(got) != want || stats.Records != want {
			t.Fatalf("from %d delivered %d records (stats %d), want %d", from, len(got), stats.Records, want)
		}
		for i, seq := range got {
			if seq != from+uint64(i) {
				t.Fatalf("from %d: record %d has seq %d", from, i, seq)
			}
		}
		if want > 0 && stats.LastSeq != 30 {
			t.Fatalf("from %d: last seq %d, want 30", from, stats.LastSeq)
		}
	}
}

// TestReplayFromTornTail mirrors Replay's crash contract: tail damage is
// skipped and reported, not fatal.
func TestReplayFromTornTail(t *testing.T) {
	dir := tailFixture(t, 10)
	paths, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := paths[len(paths)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	stats, err := ReplayFrom(dir, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TailErr == nil || !errors.Is(stats.TailErr, ErrTornRecord) {
		t.Fatalf("tail err = %v, want ErrTornRecord", stats.TailErr)
	}
	if stats.Records != 5 || stats.LastSeq != 9 {
		t.Fatalf("stats = %+v, want records 5..9 delivered", stats)
	}

	// StatDir reports the same damage.
	st, err := StatDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 9 || !errors.Is(st.TailErr, ErrTornRecord) {
		t.Fatalf("stat = %+v, want 9 records with torn tail", st)
	}
}
