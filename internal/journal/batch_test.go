package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// readSegments concatenates every segment file's bytes in order.
func readSegments(t *testing.T, dir string) []byte {
	t.Helper()
	paths, _, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, data...)
	}
	return all
}

// TestAppendBatchBytesIdentical: a batch append must leave exactly the
// bytes sequential Append would — group commit changes durability
// scheduling, never the on-disk format.
func TestAppendBatchBytesIdentical(t *testing.T) {
	var rvs []Review
	for i := 0; i < 25; i++ {
		rvs = append(rvs, testReview(i))
	}

	seqDir := filepath.Join(t.TempDir(), "seq")
	js, err := Open(seqDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, js, 0, len(rvs))
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}

	batchDir := filepath.Join(t.TempDir(), "batch")
	jb, err := Open(batchDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Split the same stream into uneven batches.
	for _, span := range [][2]int{{0, 1}, {1, 8}, {8, 9}, {9, 25}} {
		first, err := jb.AppendBatch(rvs[span[0]:span[1]])
		if err != nil {
			t.Fatalf("batch [%d:%d]: %v", span[0], span[1], err)
		}
		if want := uint64(span[0] + 1); first != want {
			t.Fatalf("batch [%d:%d] firstSeq = %d, want %d", span[0], span[1], first, want)
		}
	}
	if err := jb.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(readSegments(t, seqDir), readSegments(t, batchDir)) {
		t.Fatal("batch-appended journal bytes differ from sequential appends")
	}
	got, _ := replayAll(t, batchDir)
	if !reflect.DeepEqual(got, rvs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(rvs))
	}
}

// TestAppendBatchDurability: AppendBatch must fsync at batch end even
// with a lazy SyncEvery, firing SyncObserver once per batch.
func TestAppendBatchDurability(t *testing.T) {
	syncs := 0
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{
		SyncEvery:    1000,
		SyncObserver: func(time.Duration) { syncs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	batch := []Review{testReview(0), testReview(1), testReview(2)}
	if _, err := j.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("SyncObserver fired %d times for one batch, want 1", syncs)
	}
	if got := j.SyncedSeq(); got != 3 {
		t.Fatalf("SyncedSeq = %d after batch, want 3 (every record durable)", got)
	}
	if _, err := j.AppendBatch(batch[:1]); err != nil {
		t.Fatal(err)
	}
	if syncs != 2 || j.SyncedSeq() != 4 {
		t.Fatalf("after second batch: syncs %d (want 2), synced %d (want 4)", syncs, j.SyncedSeq())
	}
}

// TestAppendBatchRollsBeforeBatch: a batch that does not fit the active
// segment lands whole in the next one — never split across a roll.
func TestAppendBatchRollsBeforeBatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{SegmentMaxBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 2)
	var batch []Review
	for i := 2; i < 8; i++ {
		batch = append(batch, testReview(i))
	}
	first, err := j.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("firstSeq = %d, want 3", first)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	paths, seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected a roll, got %d segment(s)", len(paths))
	}
	// The batch's first record starts the rolled segment.
	if seqs[len(seqs)-1] != 3 {
		t.Fatalf("final segment starts at seq %d, want 3 (whole batch in one segment)", seqs[len(seqs)-1])
	}
	got, _ := replayAll(t, dir)
	if len(got) != 8 {
		t.Fatalf("replayed %d records, want 8", len(got))
	}
}

// TestAppendBatchValidation mirrors Append's input checks.
func TestAppendBatchValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch(nil); err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch: err = %v", err)
	}
	if _, err := j.AppendBatch([]Review{{EntityID: "e"}}); err == nil {
		t.Fatal("batch with an invalid record was accepted")
	}
	// A rejected batch must not consume sequence numbers.
	if got := j.NextSeq(); got != 1 {
		t.Fatalf("NextSeq = %d after rejected batches, want 1", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.AppendBatch([]Review{testReview(0)}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("append on closed journal: err = %v", err)
	}
}
