package journal_test

// End-to-end tests of the incremental-enrichment contract on a monolith:
// a snapshot is the *base* and the journal the durable delta log, and
// snapshot + journal replay must answer the full 948-entry harness query
// fingerprint byte-identically to a database that ingested the same
// reviews live (replay-vs-rebuild). The suite also drives the real HTTP
// write endpoint from concurrent writers against concurrent readers
// under -race, proving the journal records the serialized ingestion
// order, and exercises torn-tail loss bounds and compaction.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/snapshot"
)

const e2eDeltaCount = 12

// Shared fixture: one small hotel corpus whose last reviews are held out
// of the base build as the live-ingestion deltas, and a snapshot of the
// base on disk.
var (
	e2eOnce   sync.Once
	e2eData   *corpus.Dataset
	e2eDeltas []core.ReviewData
	e2eSnap   string
	e2eErr    error
)

func e2eFixture(t *testing.T) (*corpus.Dataset, []core.ReviewData, string) {
	t.Helper()
	e2eOnce.Do(func() {
		genCfg := corpus.SmallConfig()
		genCfg.Seed = 1
		e2eData = corpus.GenerateHotels(genCfg)
		cfg := core.DefaultConfig()
		cfg.Seed = 1
		cfg.UseSubstitutionIndex = true // exercise every snapshot section
		// Same derivation as harness.BuildDB, minus the held-out tail.
		rng := rand.New(rand.NewSource(cfg.Seed + 13))
		in := harness.BuildInputFromDataset(e2eData, 400, 300, rng)
		split := len(in.Reviews) - e2eDeltaCount
		e2eDeltas = append([]core.ReviewData(nil), in.Reviews[split:]...)
		in.Reviews = in.Reviews[:split]
		base, err := core.Build(in, cfg)
		if err != nil {
			e2eErr = fmt.Errorf("base build: %w", err)
			return
		}
		dir, err := os.MkdirTemp("", "journal-e2e-*")
		if err != nil {
			e2eErr = err
			return
		}
		// The dir outlives the fixture deliberately (shared by the whole
		// package run); the OS temp cleaner reclaims it.
		e2eSnap = filepath.Join(dir, "hotel-base.snap")
		if _, err := snapshot.Save(e2eSnap, base); err != nil {
			e2eErr = err
		}
	})
	if e2eErr != nil {
		t.Fatalf("e2e fixture: %v", e2eErr)
	}
	return e2eData, e2eDeltas, e2eSnap
}

// loadBase loads a fresh mutable copy of the base snapshot.
func loadBase(t *testing.T, snap string) *core.DB {
	t.Helper()
	db, _, err := snapshot.Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// applyDirect ingests deltas through the live ApplyReview path.
func applyDirect(t *testing.T, db *core.DB, deltas []core.ReviewData) {
	t.Helper()
	for _, rv := range deltas {
		if err := db.ApplyReview(rv); err != nil {
			t.Fatalf("apply %s: %v", rv.ID, err)
		}
	}
}

// journalDeltas writes deltas into a journal at dir.
func journalDeltas(t *testing.T, dir string, deltas []core.ReviewData, opts journal.Options) {
	t.Helper()
	j, err := journal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rv := range deltas {
		if _, err := j.Append(journal.Review{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReplayVsRebuildFingerprint is the tentpole contract: snapshot +
// journal replay answers the full 948-entry fingerprint byte-identically
// to live ingestion over the same union corpus, for any journal geometry,
// and compaction preserves it.
func TestReplayVsRebuildFingerprint(t *testing.T) {
	d, deltas, snap := e2eFixture(t)

	// The "rebuild": a fresh base that ingests the deltas live, never
	// touching a journal.
	live := loadBase(t, snap)
	applyDirect(t, live, deltas)
	liveFP, n := harness.QueryFingerprint(d, live)
	if n != 948 {
		t.Errorf("fingerprint covers %d query-set entries, want the full 948", n)
	}

	// The "replay": the canonical snapshot → journal → serve path.
	jdir := journal.Dir(snap)
	defer os.RemoveAll(jdir)
	journalDeltas(t, jdir, deltas, journal.Options{})
	replayed, _, st, err := journal.LoadWithJournal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != len(deltas) || st.Skipped != 0 {
		t.Fatalf("replay applied %d / skipped %d, want %d / 0", st.Applied, st.Skipped, len(deltas))
	}
	replayFP, _ := harness.QueryFingerprint(d, replayed)
	if replayFP != liveFP {
		t.Fatal("snapshot+journal replay diverges from live ingestion over the union corpus")
	}

	// Journal geometry (segment size, fsync batching) never shifts the
	// replayed state.
	for _, opts := range []journal.Options{
		{SegmentMaxBytes: 1 << 10, SyncEvery: 1},
		{SegmentMaxBytes: 1 << 20, SyncEvery: 5},
	} {
		dir := filepath.Join(t.TempDir(), "j")
		journalDeltas(t, dir, deltas, opts)
		db := loadBase(t, snap)
		if _, err := journal.ApplyAll(db, dir); err != nil {
			t.Fatal(err)
		}
		fp, _ := harness.QueryFingerprint(d, db)
		if fp != liveFP {
			t.Fatalf("journal geometry %+v changed the replayed fingerprint", opts)
		}
	}

	// Compaction folds the pair into a fresh base with the same answers.
	compacted := filepath.Join(t.TempDir(), "hotel-compacted.snap")
	if _, st, err := journal.Compact(snap, compacted); err != nil || st.Applied != len(deltas) {
		t.Fatalf("compact: applied %d, err %v", st.Applied, err)
	}
	folded, _, foldSt, err := journal.LoadWithJournal(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if foldSt.Records != 0 {
		t.Fatalf("compacted snapshot should start with an empty journal, found %d records", foldSt.Records)
	}
	foldedFP, _ := harness.QueryFingerprint(d, folded)
	if foldedFP != liveFP {
		t.Fatal("compacted snapshot diverges from live ingestion")
	}

	// Crash between a compaction's snapshot rename and journal removal:
	// the folded snapshot sees its own deltas again and must skip them.
	overlapDir := journal.Dir(compacted)
	defer os.RemoveAll(overlapDir)
	journalDeltas(t, overlapDir, deltas, journal.Options{})
	again, _, overlapSt, err := journal.LoadWithJournal(compacted)
	if err != nil {
		t.Fatal(err)
	}
	if overlapSt.Skipped != len(deltas) || overlapSt.Applied != 0 {
		t.Fatalf("idempotent replay: applied %d / skipped %d, want 0 / %d",
			overlapSt.Applied, overlapSt.Skipped, len(deltas))
	}
	againFP, _ := harness.QueryFingerprint(d, again)
	if againFP != liveFP {
		t.Fatal("idempotent replay diverged")
	}
}

// TestTornTailLosesOnlyTheTail: a crash that tears the final record
// yields a clean load whose state is exactly the live state minus the
// torn (never-acknowledged-durable) review.
func TestTornTailLosesOnlyTheTail(t *testing.T) {
	d, deltas, snap := e2eFixture(t)
	jdir := journal.Dir(snap)
	defer os.RemoveAll(jdir)
	journalDeltas(t, jdir, deltas, journal.Options{})

	// Tear the last record: chop 3 bytes off the final segment.
	segs, err := filepath.Glob(filepath.Join(jdir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	replayed, _, st, err := journal.LoadWithJournal(snap)
	if err != nil {
		t.Fatalf("torn tail must not fail the load: %v", err)
	}
	if st.TailErr == nil || st.Applied != len(deltas)-1 {
		t.Fatalf("torn tail: applied %d (tail %v), want %d with damage", st.Applied, st.TailErr, len(deltas)-1)
	}
	reference := loadBase(t, snap)
	applyDirect(t, reference, deltas[:len(deltas)-1])
	gotFP, _ := harness.QueryFingerprint(d, replayed)
	wantFP, _ := harness.QueryFingerprint(d, reference)
	if gotFP != wantFP {
		t.Fatal("torn-tail recovery diverges from the acknowledged prefix")
	}
}

// TestConcurrentIngestReplayDeterminism drives POST /reviews from many
// goroutines against /query and /topk readers on one daemon under -race,
// then proves the journal captured the server's serialized write order:
// a fresh snapshot+journal load fingerprints byte-identically to the
// live, concurrently mutated database — regardless of fsync batch size.
func TestConcurrentIngestReplayDeterminism(t *testing.T) {
	d, _, snap := e2eFixture(t)
	db := loadBase(t, snap)
	jdir := filepath.Join(t.TempDir(), "ingest.journal")
	j, err := journal.Open(jdir, journal.Options{SyncEvery: 3, SegmentMaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(db, server.Options{
		Ingest: &server.IngestOptions{
			Append: func(rv core.ReviewData) (uint64, error) {
				return j.Append(journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
				})
			},
		},
	}))
	defer srv.Close()

	entities := db.EntityIDs()
	texts := []string{
		"The room was very clean and the staff was friendly.",
		"Dirty bathroom and rude service, terrible stay.",
		"Comfortable bed, excellent breakfast, great location.",
	}
	const writers, perWriter, readers = 4, 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				req := server.ReviewRequest{
					ID:       fmt.Sprintf("live-%d-%d", w, i),
					EntityID: entities[(w*perWriter+i)%len(entities)],
					Reviewer: fmt.Sprintf("writer%d", w),
					Day:      4000 + i,
					Text:     texts[(w+i)%len(texts)],
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(srv.URL+"/reviews", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var ack server.ReviewResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					errs <- fmt.Errorf("write %s: status %d (%v)", req.ID, resp.StatusCode, decErr)
					return
				}
				if !ack.Owned || ack.Seq == 0 {
					errs <- fmt.Errorf("write %s: ack %+v", req.ID, ack)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var url string
				if i%2 == 0 {
					url = srv.URL + `/query?sql=select+*+from+Entities+where+%22has+really+clean+rooms%22&k=5`
				} else {
					url = srv.URL + `/topk?predicate=has+friendly+staff&k=5`
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader got status %d", resp.StatusCode)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	liveFP, n := harness.QueryFingerprint(d, db)
	replayed := loadBase(t, snap)
	st, err := journal.ApplyAll(replayed, jdir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != writers*perWriter {
		t.Fatalf("journal replayed %d writes, want %d", st.Applied, writers*perWriter)
	}
	replayFP, _ := harness.QueryFingerprint(d, replayed)
	if replayFP != liveFP {
		t.Fatalf("snapshot+journal replay diverges from the concurrently ingested daemon (%d entries)", n)
	}
}

// TestIngestEndpointErrors pins the write endpoint's error contract.
func TestIngestEndpointErrors(t *testing.T) {
	_, deltas, snap := e2eFixture(t)
	db := loadBase(t, snap)
	srv := httptest.NewServer(server.New(db, server.Options{
		Ingest: &server.IngestOptions{},
	}))
	defer srv.Close()
	readonly := httptest.NewServer(server.New(loadBase(t, snap), server.Options{}))
	defer readonly.Close()

	post := func(t *testing.T, url string, body string) (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Post(url+"/reviews", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]interface{}
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}
	valid, _ := json.Marshal(server.ReviewRequest{
		ID: deltas[0].ID, EntityID: deltas[0].EntityID, Reviewer: "x", Day: 1, Text: deltas[0].Text,
	})

	if status, _ := post(t, readonly.URL, string(valid)); status != http.StatusForbidden {
		t.Errorf("read-only server: status %d, want 403", status)
	}
	if status, _ := post(t, srv.URL, `{"id":"a"}`); status != http.StatusBadRequest {
		t.Errorf("missing fields: status %d, want 400", status)
	}
	if status, _ := post(t, srv.URL, `{"id":"a","entity":"b","text":"t","bogus":1}`); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}
	if status, m := post(t, srv.URL, `{"id":"g1","entity":"zzzz-ghost","text":"nice room"}`); status != http.StatusNotFound || m["error"] == "" {
		t.Errorf("ghost entity: status %d (%v), want 404 envelope", status, m)
	}
	if status, _ := post(t, srv.URL, string(valid)); status != http.StatusOK {
		t.Errorf("valid write: status %d, want 200", status)
	}
	if status, _ := post(t, srv.URL, string(valid)); status != http.StatusConflict {
		t.Errorf("duplicate write: status %d, want 409", status)
	}
	resp, err := http.Get(srv.URL + "/reviews")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "POST" {
		t.Errorf("GET /reviews: status %d Allow %q, want 405 POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
}
