package journal

// FuzzJournalReplay feeds arbitrary bytes to the segment scanner as a
// journal's only segment file and asserts the recovery invariants that
// the serving path depends on: replay never panics, failures are the
// package's typed errors, a successful replay always delivers a
// contiguous sequence prefix, and physical recovery (Open) agrees with
// read-only replay and leaves an appendable journal behind.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedSegment renders a valid segment with n records for the seed
// corpus.
func fuzzSeedSegment(tb testing.TB, n int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := j.Append(testReview(i)); err != nil {
			tb.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		tb.Fatal(err)
	}
	b, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func FuzzJournalReplay(f *testing.F) {
	valid := fuzzSeedSegment(f, 5)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])           // torn tail
	f.Add(valid[:segmentHeaderLen])       // header only
	f.Add(valid[:segmentHeaderLen-7])     // torn header
	f.Add([]byte(SegmentMagic))           // bare magic
	f.Add([]byte("not a journal at all")) // bad magic
	flipped := append([]byte(nil), valid...)
	flipped[segmentHeaderLen+5] ^= 0x10
	f.Add(flipped) // checksum damage
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := filepath.Join(t.TempDir(), "j")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var seqs []uint64
		stats, err := Replay(dir, func(seq uint64, rv Review) error {
			seqs = append(seqs, seq)
			return nil
		})
		if err != nil {
			// Hard failures must be typed — the serving path switches on
			// them.
			if !errors.Is(err, ErrJournalFormat) && !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrJournalChecksum) {
				t.Fatalf("untyped replay error: %v", err)
			}
			return
		}
		if stats.Records != len(seqs) {
			t.Fatalf("stats.Records = %d, delivered %d", stats.Records, len(seqs))
		}
		for i, s := range seqs {
			if s != uint64(i+1) {
				t.Fatalf("non-contiguous sequence: position %d carries seq %d", i, s)
			}
		}
		if stats.TailErr != nil &&
			!errors.Is(stats.TailErr, ErrTornRecord) && !errors.Is(stats.TailErr, ErrJournalChecksum) {
			t.Fatalf("untyped tail damage: %v", stats.TailErr)
		}

		// Physical recovery agrees with read-only replay, and the
		// recovered journal accepts appends and replays them back. (A big
		// sync batch keeps the fuzz loop from fsyncing per exec; batch
		// size never changes the bytes, per TestSyncBatchSizeInvariant.)
		j, err := Open(dir, Options{SyncEvery: 1 << 20})
		if err != nil {
			t.Fatalf("replay accepted what Open rejects: %v", err)
		}
		if got := j.NextSeq(); got != uint64(stats.Records+1) {
			t.Fatalf("Open recovered to seq %d, replay to %d", got, stats.Records+1)
		}
		if _, err := j.Append(testReview(0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		reStats, err := Replay(dir, nil)
		if err != nil || reStats.TailErr != nil {
			t.Fatalf("recovered journal replays dirty: %v / %v", err, reStats.TailErr)
		}
		if reStats.Records != stats.Records+1 {
			t.Fatalf("recovered journal has %d records, want %d", reStats.Records, stats.Records+1)
		}
	})
}

// TestFuzzSeedsDeterministic runs a deterministic sweep of mutations over
// a valid segment (every truncation length and a bit flip at every byte),
// mirroring what the fuzzer explores so the invariants hold even in runs
// where the fuzzer itself is not invoked.
func TestFuzzSeedsDeterministic(t *testing.T) {
	valid := fuzzSeedSegment(t, 4)
	check := func(data []byte) {
		t.Helper()
		dir := filepath.Join(t.TempDir(), "j")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		stats, err := Replay(dir, nil)
		if err != nil {
			if !errors.Is(err, ErrJournalFormat) && !errors.Is(err, ErrTornRecord) && !errors.Is(err, ErrJournalChecksum) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		if stats.TailErr != nil &&
			!errors.Is(stats.TailErr, ErrTornRecord) && !errors.Is(stats.TailErr, ErrJournalChecksum) {
			t.Fatalf("untyped tail damage: %v", stats.TailErr)
		}
	}
	for cut := 0; cut <= len(valid); cut++ {
		check(valid[:cut])
	}
	for off := 0; off < len(valid); off++ {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0x80
		check(mut)
	}
}

// TestFuzzCorpusCheckedIn ensures the checked-in seed corpus exists and
// every seed upholds the fuzz invariants (the CI fuzz smoke starts from
// these files).
func TestFuzzCorpusCheckedIn(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalReplay")
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("checked-in seed corpus missing at %s: %v", dir, err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(b, []byte("go test fuzz v1")) {
			t.Errorf("seed %s is not in go fuzz corpus format", e.Name())
		}
	}
}
