package journal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// hasherReview fabricates the i-th test review.
func hasherReview(i int) Review {
	return Review{
		ID:       fmt.Sprintf("r%04d", i),
		EntityID: fmt.Sprintf("e%02d", i%7),
		Reviewer: "hasher",
		Day:      i,
		Text:     fmt.Sprintf("review number %d with some text to fill the record", i),
	}
}

// TestPrefixHashesMatchOnDiskScans: the in-memory chain must agree with
// StatDir and PrefixHashAt at every sequence, across segment rolls,
// whether the chain was built by scanning or by live appends.
func TestPrefixHashesMatchOnDiskScans(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rolls over 40 records.
	j, err := Open(dir, Options{SyncEvery: 8, SegmentMaxBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Chain built live, starting from the empty journal.
	live, err := NewPrefixHashes(dir)
	if err != nil {
		t.Fatal(err)
	}
	if hash, seq := live.Last(); seq != 0 {
		t.Fatalf("empty chain covers seq %d (%s)", seq, hash)
	}

	const n = 40
	for i := 1; i <= n; i++ {
		rv := hasherReview(i)
		seq, err := j.Append(rv)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
		if err := live.Append(seq, rv); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}

	// Full-journal hash agrees with StatDir.
	st, err := StatDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments < 2 {
		t.Fatalf("want several segments, got %d", st.Segments)
	}
	if hash, seq := live.Last(); hash != st.PrefixHash || seq != st.LastSeq {
		t.Fatalf("live chain (%s, %d) != StatDir (%s, %d)", hash, seq, st.PrefixHash, st.LastSeq)
	}

	// Chain rebuilt from disk agrees everywhere.
	scanned, err := NewPrefixHashes(dir)
	if err != nil {
		t.Fatal(err)
	}
	for at := uint64(1); at <= n; at++ {
		want, wantSeq, err := PrefixHashAt(dir, at)
		if err != nil {
			t.Fatal(err)
		}
		for name, p := range map[string]*PrefixHashes{"live": live, "scanned": scanned} {
			if hash, seq := p.At(at); hash != want || seq != wantSeq {
				t.Fatalf("%s chain At(%d) = (%s, %d), want (%s, %d)", name, at, hash, seq, want, wantSeq)
			}
		}
	}

	// At past the end clamps to the last sequence, like PrefixHashAt.
	if hash, seq := live.At(n + 100); seq != n || hash != st.PrefixHash {
		t.Fatalf("At(past end) = (%s, %d)", hash, seq)
	}
}

// TestPrefixHashesAppendContract: re-appending a covered sequence is a
// no-op; skipping a sequence is an error.
func TestPrefixHashesAppendContract(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rv := hasherReview(1)
	if _, err := j.Append(rv); err != nil {
		t.Fatal(err)
	}

	// The chain scanned the journal after the append landed on disk: the
	// follow-up Append(1, ...) must be a covered-sequence no-op.
	p, err := NewPrefixHashes(dir)
	if err != nil {
		t.Fatal(err)
	}
	before, seq := p.Last()
	if seq != 1 {
		t.Fatalf("chain covers %d, want 1", seq)
	}
	if err := p.Append(1, rv); err != nil {
		t.Fatalf("covered append: %v", err)
	}
	if after, seq := p.Last(); after != before || seq != 1 {
		t.Fatal("covered append changed the chain")
	}

	// A gap breaks the chain's guarantee and must be refused.
	if err := p.Append(3, hasherReview(3)); err == nil {
		t.Fatal("gap append accepted")
	}
}

// TestPrefixHashesConcurrent: readers may probe the chain while a writer
// extends it (run under -race).
func TestPrefixHashesConcurrent(t *testing.T) {
	dir := t.TempDir()
	p, err := NewPrefixHashes(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 500; i++ {
			if err := p.Append(uint64(i), hasherReview(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			p.At(uint64(i % 50))
			p.Last()
		}
	}()
	wg.Wait()
	if _, seq := p.Last(); seq != 500 {
		t.Fatalf("chain covers %d, want 500", seq)
	}
}

// TestSyncObserver: every real fsync reports a duration; batched appends
// under SyncEvery do not over-report.
func TestSyncObserver(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var durations []time.Duration
	j, err := Open(dir, Options{
		SyncEvery: 4,
		SyncObserver: func(d time.Duration) {
			mu.Lock()
			durations = append(durations, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if _, err := j.Append(hasherReview(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// 8 appends at SyncEvery=4 → exactly 2 batch fsyncs; Close finds
	// nothing unsynced and must not observe a third.
	if len(durations) != 2 {
		t.Fatalf("observed %d fsyncs, want 2", len(durations))
	}
	for _, d := range durations {
		if d < 0 {
			t.Fatalf("negative fsync duration %v", d)
		}
	}
}
