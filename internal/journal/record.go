package journal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Review is one journaled AddReview delta — the journal's own stable copy
// of core.ReviewData, so the on-disk format cannot drift when the live
// type grows fields (new fields get new opcodes or payload versions).
type Review struct {
	ID       string
	EntityID string
	Reviewer string
	Day      int
	Text     string
}

// opAddReview is the only record opcode of format version 1.
const opAddReview = byte(1)

// encodeReview serializes a review delta: opcode, then each string
// uvarint-length-prefixed, then the day as a varint.
func encodeReview(rv Review) ([]byte, error) {
	if rv.ID == "" || rv.EntityID == "" {
		return nil, fmt.Errorf("journal: review needs ID and EntityID")
	}
	n := 1 + len(rv.ID) + len(rv.EntityID) + len(rv.Reviewer) + len(rv.Text) + 5*binary.MaxVarintLen64
	buf := make([]byte, 0, n)
	buf = append(buf, opAddReview)
	for _, s := range []string{rv.ID, rv.EntityID, rv.Reviewer, rv.Text} {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendVarint(buf, int64(rv.Day))
	if len(buf) > maxRecordBytes {
		return nil, fmt.Errorf("journal: review %s encodes to %d bytes (limit %d)", rv.ID, len(buf), maxRecordBytes)
	}
	return buf, nil
}

// decodeReview parses an opAddReview payload. Any structural damage maps
// to ErrJournalChecksum-adjacent corruption, but decode errors should be
// unreachable behind a matching CRC; they are reported as format errors.
func decodeReview(payload []byte) (Review, error) {
	var rv Review
	if len(payload) == 0 {
		return rv, fmt.Errorf("%w: empty record payload", ErrJournalFormat)
	}
	if payload[0] != opAddReview {
		return rv, fmt.Errorf("%w: unknown record opcode %d", ErrJournalFormat, payload[0])
	}
	rest := payload[1:]
	readString := func() (string, error) {
		n, used := binary.Uvarint(rest)
		if used <= 0 || n > uint64(len(rest)-used) {
			return "", fmt.Errorf("%w: truncated string in record payload", ErrJournalFormat)
		}
		s := string(rest[used : used+int(n)])
		rest = rest[used+int(n):]
		return s, nil
	}
	var err error
	if rv.ID, err = readString(); err != nil {
		return rv, err
	}
	if rv.EntityID, err = readString(); err != nil {
		return rv, err
	}
	if rv.Reviewer, err = readString(); err != nil {
		return rv, err
	}
	if rv.Text, err = readString(); err != nil {
		return rv, err
	}
	day, used := binary.Varint(rest)
	if used <= 0 || day < math.MinInt32 || day > math.MaxInt32 {
		return rv, fmt.Errorf("%w: bad day in record payload", ErrJournalFormat)
	}
	rest = rest[used:]
	if len(rest) != 0 {
		return rv, fmt.Errorf("%w: %d trailing bytes in record payload", ErrJournalFormat, len(rest))
	}
	rv.Day = int(day)
	return rv, nil
}
