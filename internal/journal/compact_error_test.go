package journal_test

// Error-path and crash-window tests of the fleet compaction's manifest
// digest refresh (CompactManifest): a missing shard artifact, corrupt
// shard bytes, the crash window where a shard snapshot was replaced but
// the manifest digest was not yet refreshed, and a retry after a crash
// that folded only part of the fleet. The happy path lives in
// internal/router/ingest_e2e_test.go.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/snapshot"
)

// shardedFixture derives a fresh 2-shard fleet (snapshots + manifest)
// from the package fixture's base snapshot and appends every delta to
// each shard's journal — the state a replicating fleet holds before
// compaction.
func shardedFixture(t *testing.T) (manifestPath string, m *snapshot.Manifest) {
	t.Helper()
	_, deltas, baseSnap := e2eFixture(t)
	base, _, err := snapshot.Load(baseSnap)
	if err != nil {
		t.Fatal(err)
	}
	shardDBs, parts, err := base.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	m = &snapshot.Manifest{
		FormatVersion: snapshot.FormatVersion,
		Name:          base.Name,
		BuildSeed:     1,
		Shards:        2,
		TotalEntities: len(base.EntityIDs()),
		CreatedUnix:   1,
	}
	for i, sdb := range shardDBs {
		ids := parts[i]
		path := filepath.Join(dir, fmt.Sprintf("hotel-shard%d.snap", i))
		meta, err := snapshot.SaveShard(path, sdb, &snapshot.ShardMeta{
			Index: i, Count: 2,
			Entities: len(ids), TotalEntities: len(base.EntityIDs()),
			FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
		})
		if err != nil {
			t.Fatal(err)
		}
		m.Shard = append(m.Shard, snapshot.ManifestShard{
			Index: i, Path: filepath.Base(path),
			Entities: len(ids), FirstEntity: ids[0], LastEntity: ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256, SnapshotBytes: meta.FileBytes,
		})
		j, err := journal.Open(journal.Dir(path), journal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rv := range deltas {
			if _, err := j.Append(journal.Review{
				ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	manifestPath = filepath.Join(dir, "hotel.manifest.json")
	if err := snapshot.WriteManifest(manifestPath, m); err != nil {
		t.Fatal(err)
	}
	return manifestPath, m
}

func TestCompactManifestMissingShardFile(t *testing.T) {
	manifestPath, m := shardedFixture(t)
	if err := os.Remove(snapshot.ShardPath(manifestPath, m.Shard[1])); err != nil {
		t.Fatal(err)
	}
	_, _, err := journal.CompactManifest(manifestPath)
	if err == nil {
		t.Fatal("compaction of a fleet with a missing shard file should fail")
	}
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("error %v does not wrap fs.ErrNotExist", err)
	}
	// Shard 0 may already be folded (per-shard commit), but the manifest
	// must still load — the failure never leaves a torn manifest behind.
	if _, err := snapshot.LoadManifest(manifestPath); err != nil {
		t.Fatalf("manifest unusable after failed compaction: %v", err)
	}
}

func TestCompactManifestCorruptShardBytes(t *testing.T) {
	manifestPath, m := shardedFixture(t)
	path := snapshot.ShardPath(manifestPath, m.Shard[0])
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = journal.CompactManifest(manifestPath)
	if err == nil {
		t.Fatal("compaction over corrupt shard bytes should fail")
	}
	// The journal is untouched: nothing was folded away on the failure.
	st, serr := journal.StatDir(journal.Dir(path))
	if serr != nil || st.Records != e2eDeltaCount {
		t.Fatalf("journal after failed compaction: %+v (%v), want %d records intact", st, serr, e2eDeltaCount)
	}
}

// TestCompactManifestStaleDigestRetry exercises the documented crash
// window: a shard snapshot was replaced by its folded successor, but the
// process died before the manifest digest refresh. The manifest now
// records a stale digest — digest-verified serving refuses the shard —
// and re-running CompactManifest heals it (compaction *produces*
// digests, so it loads without demanding they already match, and replay
// skips the already-folded reviews by id).
func TestCompactManifestStaleDigestRetry(t *testing.T) {
	manifestPath, m := shardedFixture(t)
	shardPath := snapshot.ShardPath(manifestPath, m.Shard[0])

	// Simulate the crash: fold shard 0 in place (journal kept, manifest
	// not refreshed).
	db, meta, err := snapshot.Load(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := journal.ApplyAll(db, journal.Dir(shardPath)); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.SaveShard(shardPath, db, meta.Shard); err != nil {
		t.Fatal(err)
	}
	if _, _, err := snapshot.LoadVerifiedShard(manifestPath, m, 0); !errors.Is(err, snapshot.ErrShardDigest) {
		t.Fatalf("stale digest not detected: %v", err)
	}

	m2, folded, err := journal.CompactManifest(manifestPath)
	if err != nil {
		t.Fatalf("retry after stale-digest crash: %v", err)
	}
	if len(folded) != 2 {
		t.Fatalf("folded %d shards, want 2", len(folded))
	}
	for _, s := range folded {
		if s.Index == 0 {
			// Every delta was already in the crashed fold's snapshot.
			if s.Applied != 0 || s.Skipped != e2eDeltaCount {
				t.Fatalf("shard 0 retry folded %+v, want all %d skipped", s, e2eDeltaCount)
			}
		} else if s.Applied != e2eDeltaCount {
			t.Fatalf("shard 1 folded %+v, want %d applied", s, e2eDeltaCount)
		}
	}
	// The refreshed manifest verifies end to end and the journals are
	// gone.
	for i := range m2.Shard {
		if _, _, err := snapshot.LoadVerifiedShard(manifestPath, m2, i); err != nil {
			t.Fatalf("shard %d after retry: %v", i, err)
		}
		if _, err := os.Stat(journal.Dir(snapshot.ShardPath(manifestPath, m2.Shard[i]))); !os.IsNotExist(err) {
			t.Fatalf("shard %d journal survived the retry", i)
		}
	}
}

// TestCompactManifestPartialFleetRetry: a crash after shard 0 was fully
// folded (snapshot replaced, manifest refreshed, journal removed) leaves
// a half-compacted fleet; the retry folds only the remaining shard.
func TestCompactManifestPartialFleetRetry(t *testing.T) {
	manifestPath, m := shardedFixture(t)
	shardPath := snapshot.ShardPath(manifestPath, m.Shard[0])

	// Fold shard 0 completely, exactly as CompactManifest would.
	db, meta, err := snapshot.Load(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := journal.ApplyAll(db, journal.Dir(shardPath)); err != nil {
		t.Fatal(err)
	}
	newMeta, err := snapshot.SaveShard(shardPath, db, meta.Shard)
	if err != nil {
		t.Fatal(err)
	}
	m.Shard[0].SnapshotSHA256 = newMeta.SHA256
	m.Shard[0].SnapshotBytes = newMeta.FileBytes
	if err := snapshot.WriteManifest(manifestPath, m); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(journal.Dir(shardPath)); err != nil {
		t.Fatal(err)
	}

	m2, folded, err := journal.CompactManifest(manifestPath)
	if err != nil {
		t.Fatalf("retry on half-compacted fleet: %v", err)
	}
	if len(folded) != 1 || folded[0].Index != 1 || folded[0].Applied != e2eDeltaCount {
		t.Fatalf("retry folded %+v, want only shard 1's %d deltas", folded, e2eDeltaCount)
	}
	for i := range m2.Shard {
		if _, _, err := snapshot.LoadVerifiedShard(manifestPath, m2, i); err != nil {
			t.Fatalf("shard %d after retry: %v", i, err)
		}
	}
}
