package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// testReview builds the i-th deterministic review.
func testReview(i int) Review {
	return Review{
		ID:       fmt.Sprintf("r-%04d", i),
		EntityID: fmt.Sprintf("e-%03d", i%7),
		Reviewer: fmt.Sprintf("rev%02d", i%5),
		Day:      3000 + i,
		Text:     fmt.Sprintf("The room %d was very clean — résumé №%d.", i, i),
	}
}

// appendN appends n test reviews and returns them.
func appendN(t *testing.T, j *Journal, start, n int) []Review {
	t.Helper()
	out := make([]Review, 0, n)
	for i := start; i < start+n; i++ {
		rv := testReview(i)
		seq, err := j.Append(rv)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("append %d got seq %d, want %d", i, seq, want)
		}
		out = append(out, rv)
	}
	return out
}

// replayAll replays dir and returns the records with the stats.
func replayAll(t *testing.T, dir string) ([]Review, ReplayStats) {
	t.Helper()
	var got []Review
	stats, err := Replay(dir, func(seq uint64, rv Review) error {
		if want := uint64(len(got) + 1); seq != want {
			t.Fatalf("replay delivered seq %d, want %d", seq, want)
		}
		got = append(got, rv)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Records != len(got) {
		t.Fatalf("stats.Records = %d, delivered %d", stats.Records, len(got))
	}
	return got, stats
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, j, 0, 10)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, dir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %+v,\nwant %+v", got, want)
	}
	if stats.TailErr != nil || stats.DroppedBytes != 0 {
		t.Fatalf("clean journal reported damage: %+v", stats)
	}
	if stats.LastSeq != 10 {
		t.Fatalf("LastSeq = %d, want 10", stats.LastSeq)
	}

	// Reopen continues the sequence; replay sees both generations.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j2.NextSeq() != 11 {
		t.Fatalf("reopened NextSeq = %d, want 11", j2.NextSeq())
	}
	if rec := j2.Recovery(); rec.Err != nil {
		t.Fatalf("clean reopen reported recovery: %+v", rec)
	}
	want = append(want, appendN(t, j2, 10, 5)...)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ = replayAll(t, dir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after reopen: replayed %d records, want %d", len(got), len(want))
	}
}

func TestSegmentRolling(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{SegmentMaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, j, 0, 40)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	paths, seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected several segments at 256-byte cap, got %d", len(paths))
	}
	if seqs[0] != 1 {
		t.Fatalf("first segment starts at seq %d", seqs[0])
	}
	got, stats := replayAll(t, dir)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rolling journal replayed %d records, want %d", len(got), len(want))
	}
	if stats.Segments != len(paths) {
		t.Fatalf("stats.Segments = %d, want %d", stats.Segments, len(paths))
	}
}

// TestSyncBatchSizeInvariant: the on-disk bytes — and therefore the
// replayed state — are identical for every fsync batch size; batching
// changes only the durability horizon, never the contents.
func TestSyncBatchSizeInvariant(t *testing.T) {
	var first []byte
	for _, syncEvery := range []int{1, 4, 1000} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("j%d", syncEvery))
		j, err := Open(dir, Options{SyncEvery: syncEvery, SegmentMaxBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, j, 0, 25)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		paths, _, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		var all []byte
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, b...)
		}
		if first == nil {
			first = all
		} else if !bytes.Equal(first, all) {
			t.Fatalf("SyncEvery=%d produced different journal bytes", syncEvery)
		}
	}
}

func TestSyncedSeqTracksBatches(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 2)
	if got := j.SyncedSeq(); got != 0 {
		t.Fatalf("SyncedSeq after 2 of 3 batched appends = %d, want 0", got)
	}
	appendN(t, j, 2, 1)
	if got := j.SyncedSeq(); got != 3 {
		t.Fatalf("SyncedSeq after full batch = %d, want 3", got)
	}
	appendN(t, j, 3, 1)
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.SyncedSeq(); got != 4 {
		t.Fatalf("SyncedSeq after explicit Sync = %d, want 4", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayMissingDirIsEmpty(t *testing.T) {
	stats, err := Replay(filepath.Join(t.TempDir(), "nope"), func(uint64, Review) error {
		t.Fatal("delivered a record from a missing journal")
		return nil
	})
	if err != nil || stats.Records != 0 {
		t.Fatalf("missing dir: stats=%+v err=%v", stats, err)
	}
}

func TestAppendValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.Append(Review{Text: "no ids"}); err == nil {
		t.Error("append without ids should fail")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(testReview(0)); err == nil {
		t.Error("append on closed journal should fail")
	}
	if err := j.Sync(); err == nil {
		t.Error("sync on closed journal should fail")
	}
}

func TestReviewCodec(t *testing.T) {
	for i := 0; i < 5; i++ {
		rv := testReview(i)
		rv.Day = -rv.Day // negative days must survive
		b, err := encodeReview(rv)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeReview(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != rv {
			t.Fatalf("codec round trip: %+v != %+v", got, rv)
		}
	}
	// Structural damage decodes to typed format errors.
	good, _ := encodeReview(testReview(1))
	for name, bad := range map[string][]byte{
		"empty":          {},
		"unknown opcode": {99, 0},
		"truncated":      good[:len(good)/2],
		"trailing":       append(append([]byte{}, good...), 0xff),
	} {
		if _, err := decodeReview(bad); !errors.Is(err, ErrJournalFormat) {
			t.Errorf("%s: err = %v, want ErrJournalFormat", name, err)
		}
	}
}

func TestStrayFileAndBadSegmentName(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 3)
	j.Close()
	// Non-.wal files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir)
	if len(got) != 3 {
		t.Fatalf("stray file changed replay: %d records", len(got))
	}
	// A .wal file with a non-numeric name is a format error.
	if err := os.WriteFile(filepath.Join(dir, "bogus.wal"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, nil); !errors.Is(err, ErrJournalFormat) {
		t.Fatalf("bogus segment name: err = %v, want ErrJournalFormat", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrJournalFormat) {
		t.Fatalf("open with bogus segment name: err = %v, want ErrJournalFormat", err)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "j")
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, j, 0, 3)
	j.Close()
	boom := errors.New("boom")
	if _, err := Replay(dir, func(seq uint64, rv Review) error {
		if seq == 2 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("callback error = %v, want boom", err)
	}
}

func TestDirConvention(t *testing.T) {
	if got := Dir("/x/hotel.snap"); got != "/x/hotel.snap.journal" {
		t.Fatalf("Dir = %q", got)
	}
	if !strings.HasSuffix(segPath("/j", 7), string(filepath.Separator)+"00000000000000000007.wal") {
		t.Fatalf("segPath = %q", segPath("/j", 7))
	}
}
