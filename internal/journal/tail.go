package journal

// Fleet introspection: the primitives the anti-entropy control plane
// (internal/fleet) builds on. Every node in a routed fleet journals every
// replicated write in one fleet-wide order, so two healthy journals hold
// byte-identical record sequences — which makes "how far did this node
// get" (Stat), "is this node a pure prefix of that one" (PrefixHashAt)
// and "stream me everything after seq K" (ReplayFrom) sufficient to
// detect and heal a replica that missed writes.
//
// The prefix hash is a SHA-256 chain over the canonical record encodings
// in sequence order: equal hashes at equal sequence numbers mean
// byte-identical record prefixes, so a lagging replica whose full-journal
// hash matches the reference's hash at the same sequence needs only the
// reference's tail.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Stat summarizes a journal directory for the control plane.
type Stat struct {
	// Records is the number of intact records; LastSeq the sequence number
	// of the last one (0 when empty).
	Records int
	LastSeq uint64
	// Segments is the number of segment files.
	Segments int
	// PrefixHash is the hex SHA-256 chain over records 1..LastSeq (the
	// hash of the empty journal for Records == 0).
	PrefixHash string
	// TailErr reports skipped tail damage on the final segment, exactly as
	// ReplayStats.TailErr does; nil for a clean journal.
	TailErr error
}

// errStopScan is the internal sentinel a prefix scan returns through the
// record callback to stop cleanly at its upper bound.
var errStopScan = errors.New("journal: stop scan")

// scanPrefix walks the journal like Replay, delivering each record's
// sequence number and canonical payload bytes to each, stopping after
// upTo (0 means no bound). Tail damage on the final segment is skipped
// and reported; structural damage is a hard error.
func scanPrefix(dir string, upTo uint64, each func(seq uint64, payload []byte) error) (Stat, error) {
	var st Stat
	paths, seqs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || isNotDir(err) {
			return st, nil
		}
		return st, fmt.Errorf("journal: stat: %w", err)
	}
	st.Segments = len(paths)
	next := uint64(1)
	for i, path := range paths {
		last := i == len(paths)-1
		res, err := scanSegmentFile(path, seqs[i], next, func(seq uint64, rv Review) error {
			if upTo > 0 && seq > upTo {
				return errStopScan
			}
			payload, err := encodeReview(rv)
			if err != nil {
				return err
			}
			if err := each(seq, payload); err != nil {
				return err
			}
			st.Records++
			st.LastSeq = seq
			return nil
		})
		if errors.Is(err, errStopScan) {
			break
		}
		if err != nil {
			return st, err
		}
		if res.tailErr != nil && !last {
			return st, fmt.Errorf("journal: segment %s: %w", filepath.Base(path), res.tailErr)
		}
		next += uint64(res.records)
		if res.tailErr != nil {
			st.TailErr = res.tailErr
			break
		}
	}
	return st, nil
}

// StatDir reports a journal directory's record count, last sequence,
// segment count and full prefix hash. A missing directory is the empty
// journal.
func StatDir(dir string) (Stat, error) {
	return statUpTo(dir, 0)
}

// PrefixHashAt hashes the journal's records up to and including sequence
// upTo (or the whole journal when it is shorter), returning the hash and
// the last sequence actually covered. Two journals whose PrefixHashAt
// agree at the same sequence hold byte-identical record prefixes.
func PrefixHashAt(dir string, upTo uint64) (hash string, lastSeq uint64, err error) {
	st, err := statUpTo(dir, upTo)
	if err != nil {
		return "", 0, err
	}
	return st.PrefixHash, st.LastSeq, nil
}

// statUpTo is the shared scan of StatDir and PrefixHashAt.
func statUpTo(dir string, upTo uint64) (Stat, error) {
	h := sha256.New()
	var lenBuf [4]byte
	st, err := scanPrefix(dir, upTo, func(seq uint64, payload []byte) error {
		// Length-prefix each payload so the chain is injective over record
		// sequences, not just over their concatenation.
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
		h.Write(lenBuf[:])
		h.Write(payload)
		return nil
	})
	if err != nil {
		return st, err
	}
	st.PrefixHash = hex.EncodeToString(h.Sum(nil))
	return st, nil
}

// TailInfo reports a journal's last sequence number and segment count
// without scanning (or hashing) the whole directory: only the final
// segment — bounded by SegmentMaxBytes — is read. It is the cheap
// sibling of StatDir for callers that do not need the prefix hash (the
// /healthz position, pagination bookkeeping). A missing directory is the
// empty journal.
func TailInfo(dir string) (lastSeq uint64, segments int, err error) {
	paths, seqs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || isNotDir(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("journal: tail info: %w", err)
	}
	if len(paths) == 0 {
		return 0, 0, nil
	}
	last := len(paths) - 1
	res, err := scanSegmentFile(paths[last], seqs[last], seqs[last], nil)
	if err != nil {
		return 0, len(paths), err
	}
	// The final segment's header names the sequence of its first record;
	// an empty (or fully torn) final segment means the journal ends just
	// before it.
	return seqs[last] + uint64(res.records) - 1, len(paths), nil
}

// ReplayFrom streams every intact record with sequence number >= from to
// fn in order — the tail-read of the anti-entropy backfill. Segments that
// end before from are skipped without being read. Tail damage on the
// final segment is skipped and reported in the stats (same contract as
// Replay); ReplayStats.Records counts only delivered records.
func ReplayFrom(dir string, from uint64, fn func(seq uint64, rv Review) error) (ReplayStats, error) {
	var stats ReplayStats
	paths, seqs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) || isNotDir(err) {
			return stats, nil
		}
		return stats, fmt.Errorf("journal: replay from %d: %w", from, err)
	}
	// Skip whole segments whose records all precede from: segment i covers
	// [seqs[i], seqs[i+1]), so it is skippable when the next segment still
	// starts at or before from.
	start := 0
	for start+1 < len(paths) && seqs[start+1] <= from {
		start++
	}
	// The first scanned segment's start is taken from its (validated)
	// header — the skipped segments' record counts are unknown; from there
	// the cross-segment chain is checked exactly as Replay checks it.
	next := seqs[start]
	for i := start; i < len(paths); i++ {
		last := i == len(paths)-1
		res, err := scanSegmentFile(paths[i], seqs[i], next, func(seq uint64, rv Review) error {
			if seq < from {
				return nil
			}
			if fn != nil {
				if err := fn(seq, rv); err != nil {
					return err
				}
			}
			stats.Records++
			stats.LastSeq = seq
			return nil
		})
		if err != nil {
			return stats, err
		}
		if res.tailErr != nil && !last {
			return stats, fmt.Errorf("journal: segment %s: %w", filepath.Base(paths[i]), res.tailErr)
		}
		stats.Segments++
		next += uint64(res.records)
		if res.tailErr != nil {
			fi, statErr := os.Stat(paths[i])
			if statErr == nil {
				stats.DroppedBytes = fi.Size() - res.goodBytes
			}
			stats.TailErr = res.tailErr
			break
		}
	}
	return stats, nil
}

// ExclusiveLock takes the journal directory's exclusive lock — the same
// lock a serving Journal holds — and returns its release. Control-plane
// operations that fold or replace a journal (compaction, rebalancing)
// hold it so a live writer cannot keep acknowledging appends into
// segments that are about to be deleted. A missing directory needs no
// lock; a held lock is a hard error telling the operator to stop the
// server first.
func ExclusiveLock(dir string) (release func(), err error) {
	return lockForCompaction(dir)
}
