//go:build !unix

package journal

import "os"

// lockDir is a no-op on platforms without flock semantics; single-writer
// discipline is the operator's responsibility there.
func lockDir(dir string) (*os.File, error) { return nil, nil }
