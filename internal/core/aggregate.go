package core

import (
	"fmt"
	"sort"
)

// WeightFn assigns an aggregation weight to one extraction. §4.2.2 leaves
// the aggregation function open as a design dimension — "an application
// might decide to assign uniform weights to all reviews but another might
// want to assign higher weights to reviews marked as helpful" — so the
// engine accepts arbitrary weightings.
type WeightFn func(*Extraction) float64

// UniformWeight is the paper's current implementation: every extracted
// phrase counts once.
func UniformWeight(*Extraction) float64 { return 1 }

// RecencyWeight builds a weighting that decays by review age:
// weight = 1 / (1 + age/halfLifeDays), where age is measured backward
// from the newest day seen. Suits fast-drifting attributes such as
// friendlyStaff (§4.2.2).
func RecencyWeight(newestDay int, halfLifeDays float64) WeightFn {
	return func(e *Extraction) float64 {
		age := float64(newestDay - e.Day)
		if age < 0 {
			age = 0
		}
		return 1 / (1 + age/halfLifeDays)
	}
}

// ProlificReviewerWeight up-weights extractions from reviewers with many
// reviews in the database (a proxy for "helpful" reviewers).
func ProlificReviewerWeight(db *DB, minReviews int, boost float64) WeightFn {
	return func(e *Extraction) float64 {
		if db.ReviewerReviewCount(e.Reviewer) >= minReviews {
			return boost
		}
		return 1
	}
}

// RebuildSummaries recomputes every marker summary under a new weighting
// and installs the result, returning the previous summaries so callers
// can restore them. Weights scale each extraction's contribution to the
// histogram, sentiment sums and centroids; provenance is unchanged
// (weight 0 extractions still trace, they just stop counting).
func (db *DB) RebuildSummaries(weight WeightFn) map[string]map[string]*MarkerSummary {
	if weight == nil {
		weight = UniformWeight
	}
	prev := db.Summaries
	next := map[string]map[string]*MarkerSummary{}
	for _, attr := range db.Attrs {
		next[attr.Name] = map[string]*MarkerSummary{}
	}
	for i := range db.Extractions {
		ext := &db.Extractions[i]
		attr := db.attrByName[ext.Attribute]
		if attr == nil {
			continue
		}
		byEntity := next[ext.Attribute]
		s, ok := byEntity[ext.EntityID]
		if !ok {
			s = newMarkerSummary(len(attr.Markers), db.Embed.Dim())
			byEntity[ext.EntityID] = s
		}
		w := weight(ext)
		vec := db.Embed.Rep(ext.Phrase)
		s.Counts[ext.Marker] += w
		s.SentSum[ext.Marker] += w * ext.Sentiment
		if vec != nil {
			for d := range vec {
				s.VecSum[ext.Marker][d] += w * vec[d]
			}
		}
		s.Total += w
		s.Provenance[ext.Marker] = append(s.Provenance[ext.Marker], ext.ID)
	}
	for _, byEntity := range next {
		for _, s := range byEntity {
			s.finalize()
		}
	}
	db.Summaries = next
	db.degreeLists.reset() // precomputed degrees are weighting-dependent
	return prev
}

// RestoreSummaries reinstalls summaries previously returned by
// RebuildSummaries.
func (db *DB) RestoreSummaries(summaries map[string]map[string]*MarkerSummary) {
	db.Summaries = summaries
	db.degreeLists.reset()
}

// AddReview ingests one new review; it is ApplyReview under its original
// name, kept for callers that predate the journaled delta path.
func (db *DB) AddReview(rv ReviewData) error { return db.ApplyReview(rv) }

// HasReview reports whether a review id has already been ingested (at
// build time or through ApplyReview). Journal replay uses it to stay
// idempotent when a crash leaves a delta both folded into the snapshot
// and still present in the journal.
func (db *DB) HasReview(reviewID string) bool {
	_, ok := db.ReviewSentiments[reviewID]
	return ok
}

// ServesEntity reports whether this database instance serves the entity —
// true for every known entity on a monolith, and only for the owned
// contiguous range on a shard (the Entities relation is the partitioned
// state; see ShardDB).
func (db *DB) ServesEntity(entityID string) bool {
	i := sort.SearchStrings(db.entityIDs, entityID)
	return i < len(db.entityIDs) && db.entityIDs[i] == entityID
}

// ApplyReview ingests one new review end-to-end at query-serving time:
// extraction, attribute classification via marker matching, summary
// update, index update — the incremental maintenance path of §4.2.2
// ("the marker summaries can be incrementally computed"). It is the
// single deterministic delta operation of the journaled enrichment path:
// applying the same reviews in the same order to equal databases yields
// byte-identical query state, whether the database was freshly built or
// loaded from a snapshot, so a journal replay reconstructs exactly the
// state the live writer reached.
//
// The embedding model and markers are NOT retrained — exactly like the
// production behaviour of the paper's system, where schema and models
// are rebuilt offline while summaries track new reviews online.
//
// Corpus-global state (the Reviews relation, review BM25 index, sentiment
// and co-occurrence statistics, the extraction relation and its access
// paths) is always updated; the per-entity marker summary is materialized
// only when this instance serves the entity (ServesEntity). On a shard
// that replicates a write for another shard's entity, the global update
// keeps interpretations byte-identical fleet-wide while the owner alone
// carries the summary — mirroring the replicated/partitioned split of
// ShardDB.
// ApplyReview is PrepareReview followed by ApplyPrepared (see
// prepare.go); concurrent write pipelines call the halves separately so
// the linguistic work runs outside the serialized fold.
func (db *DB) ApplyReview(rv ReviewData) error {
	p, err := db.PrepareReview(rv)
	if err != nil {
		return err
	}
	return db.ApplyPrepared(p)
}

// nearestDomainVariation finds the (attribute, marker) of the linguistic
// variation closest to the phrase across the whole schema.
func (db *DB) nearestDomainVariation(phrase string) (*SubjectiveAttribute, int, float64) {
	var bestAttr *SubjectiveAttribute
	bestMarker, bestSim := -1, -1.0
	// Exact domain membership short-circuits.
	for _, attr := range db.Attrs {
		if m, ok := attr.MarkerOf(phrase); ok {
			return attr, m, 1
		}
	}
	for _, attr := range db.Attrs {
		_, m, sim := db.bestDomainMatch(attr, phrase)
		if sim > bestSim && m >= 0 {
			bestAttr, bestMarker, bestSim = attr, m, sim
		}
	}
	return bestAttr, bestMarker, bestSim
}

// addIncremental folds one new extraction into the live summary (when
// this instance serves the entity), maintaining the finalized centroids
// in place, and into the corpus-global extraction access paths (always).
func (db *DB) addIncremental(attr *SubjectiveAttribute, ext Extraction, owned bool) {
	if owned {
		byEntity := db.Summaries[attr.Name]
		s, ok := byEntity[ext.EntityID]
		if !ok {
			s = newMarkerSummary(len(attr.Markers), db.Embed.Dim())
			s.finalize()
			byEntity[ext.EntityID] = s
		}
		vec := db.Embed.Rep(ext.Phrase)
		s.add(ext.Marker, ext.Sentiment, vec, ext.ID)
		// Refresh the finalized centroid of the touched marker only.
		if s.centroids != nil {
			c := s.VecSum[ext.Marker].Clone()
			if s.Counts[ext.Marker] > 0 {
				c.Scale(1 / s.Counts[ext.Marker])
			}
			s.centroids[ext.Marker] = c
		}
	}
	// Maintain the extraction access paths.
	if db.extIndex[attr.Name] == nil {
		db.extIndex[attr.Name] = map[string][]int{}
	}
	db.extIndex[attr.Name][ext.EntityID] = append(db.extIndex[attr.Name][ext.EntityID], ext.ID)
	db.extByReview[ext.ReviewID] = append(db.extByReview[ext.ReviewID], ext.ID)
	if db.ReviewSentiments[ext.ReviewID] > 0 {
		seen := false
		for _, otherID := range db.extByReview[ext.ReviewID] {
			if otherID != ext.ID && db.Extractions[otherID].Attribute == ext.Attribute {
				seen = true
				break
			}
		}
		if !seen {
			db.reviewsWithAttrCount[ext.Attribute]++
		}
	}
}

// Surprise is an entity whose subjective evidence contradicts its
// objective positioning — §7's future-work example: "if there are reviews
// claiming that an expensive hotel has dirty rooms, that would be
// important to point out to the user because it contradicts their
// expectations".
type Surprise struct {
	EntityID string
	// Attribute whose evidence is unexpectedly negative.
	Attribute string
	// ExpectedRank is the entity's percentile (0..1) on the objective
	// column (1 = most expensive).
	ExpectedRank float64
	// NegativeMass is the fraction of the attribute's phrase mass at
	// negative-sentiment markers.
	NegativeMass float64
}

// Surprises scans for entities in the top objective percentile whose
// marker summaries carry a large negative mass for an attribute —
// expectation-contradicting evidence worth surfacing. objectiveCol must
// be numeric; topPct selects the high end (e.g. 0.25 = top quartile).
func (db *DB) Surprises(objectiveCol string, topPct, minNegativeMass float64) ([]Surprise, error) {
	entities, err := db.Rel.Table("Entities")
	if err != nil {
		return nil, err
	}
	type ranked struct {
		id  string
		val float64
	}
	var all []ranked
	for _, id := range db.entityIDs {
		rows := entities.ByKey(id)
		if len(rows) == 0 {
			continue
		}
		v, err := entities.Get(rows[0], objectiveCol)
		if err != nil {
			return nil, err
		}
		var f float64
		switch x := v.(type) {
		case float64:
			f = x
		case int64:
			f = float64(x)
		default:
			return nil, fmt.Errorf("core: column %s is not numeric", objectiveCol)
		}
		all = append(all, ranked{id: id, val: f})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].val < all[j].val })
	var out []Surprise
	for pos, r := range all {
		pct := float64(pos+1) / float64(len(all))
		if pct < 1-topPct {
			continue
		}
		for _, attr := range db.Attrs {
			s := db.Summary(attr.Name, r.id)
			if s == nil || s.Total == 0 {
				continue
			}
			var neg float64
			for i, m := range attr.Markers {
				if m.Sentiment < -0.2 {
					neg += s.Counts[i]
				}
			}
			if mass := neg / s.Total; mass >= minNegativeMass {
				out = append(out, Surprise{
					EntityID:     r.id,
					Attribute:    attr.Name,
					ExpectedRank: pct,
					NegativeMass: mass,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NegativeMass != out[j].NegativeMass {
			return out[i].NegativeMass > out[j].NegativeMass
		}
		if out[i].EntityID != out[j].EntityID {
			return out[i].EntityID < out[j].EntityID
		}
		return out[i].Attribute < out[j].Attribute
	})
	return out, nil
}
