package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
)

// --- Aggregation functions (§4.2.2) -----------------------------------

func TestRebuildSummariesUniformMatchesBuild(t *testing.T) {
	_, db := testDB(t)
	orig := db.Summary("room_cleanliness", firstSummarizedEntity(t, db, "room_cleanliness"))
	prev := db.RebuildSummaries(core.UniformWeight)
	defer db.RestoreSummaries(prev)
	rebuilt := db.Summary("room_cleanliness", firstSummarizedEntity(t, db, "room_cleanliness"))
	if rebuilt.Total != orig.Total {
		t.Errorf("uniform rebuild total %v != original %v", rebuilt.Total, orig.Total)
	}
	for i := range orig.Counts {
		if math.Abs(rebuilt.Counts[i]-orig.Counts[i]) > 1e-9 {
			t.Errorf("marker %d count %v != %v", i, rebuilt.Counts[i], orig.Counts[i])
		}
	}
}

func TestRebuildSummariesRecency(t *testing.T) {
	_, db := testDB(t)
	entity := firstSummarizedEntity(t, db, "room_cleanliness")
	before := db.Summary("room_cleanliness", entity).Total
	prev := db.RebuildSummaries(core.RecencyWeight(3650, 365))
	defer db.RestoreSummaries(prev)
	after := db.Summary("room_cleanliness", entity)
	if after.Total >= before {
		t.Errorf("recency-weighted total %v should be < uniform %v", after.Total, before)
	}
	if after.Total <= 0 {
		t.Error("recency weighting zeroed the summary")
	}
	// Counts stay consistent with total.
	var sum float64
	for _, c := range after.Counts {
		sum += c
	}
	if math.Abs(sum-after.Total) > 1e-9 {
		t.Errorf("weighted counts sum %v != total %v", sum, after.Total)
	}
}

func TestRebuildRestore(t *testing.T) {
	_, db := testDB(t)
	entity := firstSummarizedEntity(t, db, "staff")
	orig := db.Summary("staff", entity)
	prev := db.RebuildSummaries(core.ProlificReviewerWeight(db, 3, 2.0))
	if db.Summary("staff", entity) == orig {
		t.Error("rebuild did not install new summaries")
	}
	db.RestoreSummaries(prev)
	if db.Summary("staff", entity) != orig {
		t.Error("restore did not reinstall originals")
	}
}

func TestWeightFns(t *testing.T) {
	e := &core.Extraction{Day: 1000, Reviewer: "rev0001"}
	if core.UniformWeight(e) != 1 {
		t.Error("uniform weight != 1")
	}
	w := core.RecencyWeight(2000, 500)
	if got := w(e); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Errorf("recency weight = %v, want 1/3", got)
	}
	// Future-dated extraction clamps to age 0.
	future := &core.Extraction{Day: 3000}
	if got := w(future); got != 1 {
		t.Errorf("future extraction weight = %v, want 1", got)
	}
}

// --- Incremental ingestion (§4.2.2) ------------------------------------

func TestAddReviewUpdatesSummary(t *testing.T) {
	_, db := testDB(t)
	entity := firstSummarizedEntity(t, db, "room_cleanliness")
	before := db.Summary("room_cleanliness", entity).Total
	beforeExt := len(db.Extractions)
	err := db.AddReview(core.ReviewData{
		ID:       "new-review-1",
		EntityID: entity,
		Reviewer: "newbie",
		Day:      3000,
		Text:     "The room was very clean. The staff was friendly.",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Extractions) <= beforeExt {
		t.Fatal("no extractions ingested from the new review")
	}
	after := db.Summary("room_cleanliness", entity).Total
	if after <= before {
		t.Errorf("summary total %v did not grow from %v", after, before)
	}
	// Provenance for the new extraction resolves.
	last := db.Extractions[len(db.Extractions)-1]
	if last.ReviewID != "new-review-1" {
		t.Errorf("last extraction from %s", last.ReviewID)
	}
	// The review participates in retrieval.
	if db.ReviewerReviewCount("newbie") != 1 {
		t.Error("reviewer count not updated")
	}
}

func TestAddReviewValidation(t *testing.T) {
	_, db := testDB(t)
	if err := db.AddReview(core.ReviewData{}); err == nil {
		t.Error("empty review should fail")
	}
	entity := firstSummarizedEntity(t, db, "staff")
	rv := core.ReviewData{ID: "dup-1", EntityID: entity, Reviewer: "x", Text: "The staff was kind."}
	if err := db.AddReview(rv); err != nil {
		t.Fatal(err)
	}
	if err := db.AddReview(rv); err == nil {
		t.Error("duplicate review id should fail")
	}
}

// --- Surprises (§7) -----------------------------------------------------

func TestSurprises(t *testing.T) {
	d, db := testDB(t)
	surprises, err := db.Surprises("price_pn", 0.5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Validate structure; existence depends on the corpus draw, but with
	// independent price/quality latents, expensive-but-bad entities are
	// near-certain at 85 entities with a 0.5 top fraction.
	if len(surprises) == 0 {
		t.Skip("no surprises at this corpus draw")
	}
	for _, s := range surprises {
		if s.NegativeMass < 0.3 {
			t.Errorf("surprise below threshold: %+v", s)
		}
		if s.ExpectedRank < 0.5 {
			t.Errorf("surprise outside top fraction: %+v", s)
		}
		if d.EntityByID(s.EntityID) == nil {
			t.Errorf("unknown entity %s", s.EntityID)
		}
	}
	// Sorted by negative mass descending.
	for i := 1; i < len(surprises); i++ {
		if surprises[i].NegativeMass > surprises[i-1].NegativeMass {
			t.Error("surprises not sorted")
		}
	}
	if _, err := db.Surprises("name", 0.5, 0.3); err == nil {
		t.Error("non-numeric column should fail")
	}
}

// --- Threshold Algorithm top-k ------------------------------------------

func TestTopKThresholdAgreesWithFullScan(t *testing.T) {
	_, db := testDB(t)
	preds := []string{"has really clean rooms", "has friendly staff"}
	taRows, stats, err := db.TopKThreshold(preds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(taRows) == 0 {
		t.Fatal("TA returned nothing")
	}
	// Scores sorted descending.
	for i := 1; i < len(taRows); i++ {
		if taRows[i].Score > taRows[i-1].Score {
			t.Error("TA rows not sorted")
		}
	}
	// Compare against the precomputed-degree full scan: aggregate over
	// all entities using the same degree lists, then check set overlap.
	full, _, err := db.TopKThreshold(preds, len(db.EntityIDs()))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for i := 0; i < 10 && i < len(full); i++ {
		want[full[i].EntityID] = true
	}
	agree := 0
	for _, r := range taRows {
		if want[r.EntityID] {
			agree++
		}
	}
	if agree < len(taRows) {
		t.Errorf("TA top-10 disagrees with exhaustive ranking: %d/%d", agree, len(taRows))
	}
	if stats.SortedAccesses == 0 || stats.Candidates == 0 {
		t.Errorf("stats not collected: %+v", stats)
	}
}

func TestTopKThresholdEarlyTermination(t *testing.T) {
	_, db := testDB(t)
	preds := []string{"has really clean rooms", "has friendly staff"}
	_, stats, err := db.TopKThreshold(preds, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := len(db.EntityIDs())
	if stats.Depth >= n {
		t.Errorf("TA consumed every list position (%d of %d); no early termination", stats.Depth, n)
	}
}

func TestTopKThresholdFallbackPredicate(t *testing.T) {
	_, db := testDB(t)
	rows, _, err := db.TopKThreshold([]string{"good for motorcyclists"}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows for fallback predicate")
	}
}

func TestTopKThresholdDefaults(t *testing.T) {
	_, db := testDB(t)
	rows, _, err := db.TopKThreshold([]string{"has friendly staff"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 10 {
		t.Errorf("default k should cap at 10, got %d", len(rows))
	}
	empty, _, err := db.TopKThreshold(nil, 5)
	if err != nil || empty != nil {
		t.Errorf("empty predicates = %v, %v", empty, err)
	}
}

// --- Personalization ----------------------------------------------------

func TestAttributeWeightsChangeRanking(t *testing.T) {
	_, db := testDB(t)
	preds := []string{"has really clean rooms", "has friendly staff"}
	base, err := db.RankPredicates(preds, nil, core.DefaultQueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	weighted := core.DefaultQueryOptions()
	weighted.AttributeWeights = map[string]float64{"room_cleanliness": 3.0}
	personal, err := db.RankPredicates(preds, nil, weighted)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Rows) == 0 || len(personal.Rows) == 0 {
		t.Fatal("missing rows")
	}
	// Sharpening an attribute must not raise any entity's cleanliness
	// contribution: scores weakly decrease.
	baseScores := map[string]float64{}
	for _, r := range base.Rows {
		baseScores[r.EntityID] = r.Score
	}
	for _, r := range personal.Rows {
		if b, ok := baseScores[r.EntityID]; ok && r.Score > b+1e-9 {
			t.Errorf("entity %s score rose under sharpening: %v > %v", r.EntityID, r.Score, b)
		}
	}
	// Weight 1 is a no-op.
	noop := core.DefaultQueryOptions()
	noop.AttributeWeights = map[string]float64{"room_cleanliness": 1.0}
	same, err := db.RankPredicates(preds, nil, noop)
	if err != nil {
		t.Fatal(err)
	}
	for i := range same.Rows {
		if same.Rows[i].EntityID != base.Rows[i].EntityID ||
			math.Abs(same.Rows[i].Score-base.Rows[i].Score) > 1e-12 {
			t.Fatal("weight 1.0 changed the ranking")
		}
	}
}

// firstSummarizedEntity returns an entity with a non-empty summary for
// the attribute.
func firstSummarizedEntity(t *testing.T, db *core.DB, attr string) string {
	t.Helper()
	for _, id := range db.EntityIDs() {
		if s := db.Summary(attr, id); s != nil && s.Total > 0 {
			return id
		}
	}
	t.Fatalf("no entity with %s extractions", attr)
	return ""
}
