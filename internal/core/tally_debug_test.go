package core

// Internal-package debug helpers for interpreter diagnostics; used by the
// external debug test via exported wrappers below (test-only file).

import (
	"fmt"
	"sort"

	"repro/internal/textproc"
)

// DebugCooccurTally returns a human-readable dump of the co-occurrence
// tally for a predicate: per-attribute freq, obs, exp and ratio.
func (db *DB) DebugCooccurTally(predicate string) string {
	toks := textproc.Tokenize(predicate)
	var informative []string
	for _, t := range toks {
		if textproc.IsStopword(t) || db.ReviewIndex.DF(t) == 0 {
			continue
		}
		if db.ReviewIndex.IDF(t) >= db.cfg.CooccurMinIDF {
			informative = append(informative, t)
		}
	}
	if len(informative) > 0 {
		toks = informative
	}
	boost := func(reviewID string) float64 {
		s := db.ReviewSentiments[reviewID]
		if s <= 0 {
			return 0
		}
		return s
	}
	top := db.ReviewIndex.SearchBoosted(toks, db.cfg.CooccurTopK, boost)
	freq := map[string]float64{}
	reviewsWithAttr := map[string]map[string]bool{}
	for _, r := range top {
		for _, extID := range db.extByReview[r.ID] {
			ext := &db.Extractions[extID]
			freq[ext.Attribute]++
			if reviewsWithAttr[r.ID] == nil {
				reviewsWithAttr[r.ID] = map[string]bool{}
			}
			reviewsWithAttr[r.ID][ext.Attribute] = true
		}
	}
	out := fmt.Sprintf("query=%v top=%d positiveReviews=%d\n", toks, len(top), db.positiveReviews)
	var names []string
	for _, a := range db.Attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	for _, a := range names {
		var obs float64
		for _, attrs := range reviewsWithAttr {
			if attrs[a] {
				obs++
			}
		}
		exp := float64(len(top)) * float64(db.reviewsWithAttrCount[a]) / float64(db.positiveReviews+1)
		out += fmt.Sprintf("  %-18s freq=%4.0f obs=%4.0f exp=%6.2f ratio=%.2f (rate=%.3f)\n",
			a, freq[a], obs, exp, obs/(exp+1),
			float64(db.reviewsWithAttrCount[a])/float64(db.positiveReviews+1))
	}
	return out
}
