package core

// The prepare/apply split of the incremental-enrichment delta. ApplyReview
// does two very different kinds of work: the expensive linguistic half
// (tokenization, sentence splitting, perceptron extraction, nearest-
// domain-variation classification, phrase sentiment) reads only the
// frozen build-time model, while the cheap half folds the results into
// the mutable serving state (relations, indexes, marker summaries).
// Splitting them lets a concurrent write pipeline run the linguistic half
// in parallel request handlers and keep only the fold on the serialized
// path — the group-commit write path in internal/server is built on
// exactly this seam.

import (
	"fmt"

	"repro/internal/relstore"
	"repro/internal/sentiment"
	"repro/internal/textproc"
)

// preparedExtraction is one classified opinion awaiting its fold. The
// extraction ID is deliberately absent: IDs are positions in
// db.Extractions and can only be assigned at fold time, when the apply
// order is known.
type preparedExtraction struct {
	attr      *SubjectiveAttribute
	aspect    string
	phrase    string // full phrase (aspect-qualified)
	marker    int
	sentiment float64
}

// PreparedReview is the staged form of one review delta: everything
// ApplyReview derives from the review text and the frozen model,
// computed ahead of the fold. Build one with PrepareReview and fold it
// with ApplyPrepared.
type PreparedReview struct {
	rv    ReviewData
	toks  []string
	senti float64
	exts  []preparedExtraction
}

// Review returns the raw review this preparation was built from.
func (p *PreparedReview) Review() ReviewData { return p.rv }

// PrepareReview runs the model-frozen half of ApplyReview: tokenization,
// sentence-level opinion extraction, and nearest-domain-variation
// classification. It reads only immutable build products (the extractor,
// embedding model, schema and their memo caches), so any number of
// goroutines may prepare concurrently — including while another
// goroutine folds earlier deltas with ApplyPrepared. It performs no
// duplicate or ownership checks: those depend on mutable state and
// belong to the fold.
func (db *DB) PrepareReview(rv ReviewData) (*PreparedReview, error) {
	if rv.ID == "" || rv.EntityID == "" {
		return nil, fmt.Errorf("core: review needs ID and EntityID")
	}
	p := &PreparedReview{rv: rv}
	p.toks = textproc.Tokenize(rv.Text)
	p.senti = sentiment.ScoreTokens(p.toks)
	for _, sent := range textproc.Sentences(rv.Text) {
		sToks := textproc.Tokenize(sent)
		if len(sToks) == 0 {
			continue
		}
		for _, op := range db.Extractor.Extract(sToks) {
			if op.Phrase == "" {
				continue
			}
			full := op.Phrase
			if op.Aspect != "" {
				full = op.Aspect + " " + op.Phrase
			}
			// Classify by nearest linguistic variation: at serving time the
			// domain is fixed, so membership in it is the schema gate.
			attr, marker, sim := db.nearestDomainVariation(full)
			if attr == nil || sim < db.cfg.W2VThreshold {
				continue
			}
			p.exts = append(p.exts, preparedExtraction{
				attr:      attr,
				aspect:    op.Aspect,
				phrase:    full,
				marker:    marker,
				sentiment: sentiment.ScorePhrase(op.Phrase),
			})
		}
	}
	return p, nil
}

// ApplyPrepared folds one prepared delta into the serving state. It is
// the mutating half of ApplyReview and carries the same determinism
// contract: folding the same prepared reviews in the same order yields
// byte-identical query state. Callers serialize it against every reader
// and against other folds (the server's write lock); the duplicate check
// lives here, not in PrepareReview, because it reads mutable state.
func (db *DB) ApplyPrepared(p *PreparedReview) error {
	rv := p.rv
	if _, exists := db.ReviewSentiments[rv.ID]; exists {
		return fmt.Errorf("core: review %s already ingested", rv.ID)
	}
	reviews, err := db.Rel.Table("Reviews")
	if err != nil {
		return err
	}
	extTable, err := db.Rel.Table("Extractions")
	if err != nil {
		return err
	}
	if err := reviews.Insert(relstore.Row{rv.ID, rv.EntityID, rv.Reviewer, int64(rv.Day), rv.Text}); err != nil {
		return err
	}

	owned := db.ServesEntity(rv.EntityID)
	db.ReviewSentiments[rv.ID] = p.senti
	db.reviewsPerReviewer[rv.Reviewer]++
	db.ReviewIndex.Add(rv.ID, p.toks)
	if p.senti > 0 {
		db.positiveReviews++
	}

	for _, pe := range p.exts {
		id := len(db.Extractions)
		ext := Extraction{
			ID:        id,
			EntityID:  rv.EntityID,
			ReviewID:  rv.ID,
			Reviewer:  rv.Reviewer,
			Day:       rv.Day,
			Attribute: pe.attr.Name,
			Aspect:    pe.aspect,
			Phrase:    pe.phrase,
			Marker:    pe.marker,
			Sentiment: pe.sentiment,
		}
		db.Extractions = append(db.Extractions, ext)
		if err := extTable.Insert(relstore.Row{
			int64(id), ext.EntityID, ext.ReviewID, ext.Reviewer,
			int64(ext.Day), ext.Attribute, ext.Aspect, ext.Phrase,
			int64(pe.marker), ext.Sentiment,
		}); err != nil {
			return err
		}
		db.addIncremental(pe.attr, ext, owned)
	}
	// Interpretations and precomputed degree lists may shift with new
	// evidence; drop both caches.
	db.interpCache.reset()
	db.degreeLists.reset()
	return nil
}
