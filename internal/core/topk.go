package core

import (
	"sort"

	"repro/internal/ir"
	"repro/internal/textproc"
)

// This file implements top-k evaluation of conjunctive subjective queries
// with Fagin's Threshold Algorithm (TA), which the paper names as the
// standard technique for efficient fuzzy selection ("the Threshold
// Algorithm and its descendants as the most widely used techniques", §6).
//
// The enabling structure is §3.3's observation that degrees of truth for
// in-domain predicates "can be pre-computed so that they can simply be
// looked up at query time": Build-time state lets us materialize, per
// (attribute, marker), the entity list sorted by precomputed degree.
// TA then consumes the lists with sorted + random access and stops as
// soon as the k-th best aggregate meets the threshold, touching only a
// prefix of each list instead of scoring every entity.

// entityDegree is one entry of a sorted degree list.
type entityDegree struct {
	entity string
	degree float64
}

// degreeList returns the (cached) entity list for an interpreted A.m,
// sorted by descending precomputed degree. The precomputation uses the
// marker's own centroid as the query representation — exactly the
// "degree of truth for variations in the linguistic domain".
func (db *DB) degreeList(am AttrMarker) []entityDegree {
	return db.degreeLists.getOrCompute(am.String(), func() []entityDegree {
		attr := db.Attr(am.Attr)
		list := make([]entityDegree, 0, len(db.entityIDs))
		if attr != nil && am.Marker >= 0 && am.Marker < len(attr.Markers) {
			rep := attr.Markers[am.Marker].Centroid
			for _, id := range db.entityIDs {
				list = append(list, entityDegree{
					entity: id,
					degree: db.Membership.DegreeMarker(db, id, attr, am.Marker, rep),
				})
			}
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].degree != list[j].degree {
				return list[i].degree > list[j].degree
			}
			return list[i].entity < list[j].entity
		})
		return list
	})
}

// taSource is one predicate's access structure for TA: a sorted list plus
// a random-access degree lookup.
type taSource struct {
	list   []entityDegree
	degree map[string]float64
}

// TopKStats reports how much work TA did.
type TopKStats struct {
	// SortedAccesses counts list positions consumed across sources.
	SortedAccesses int
	// Depth is the deepest list prefix consumed.
	Depth int
	// Candidates is the number of distinct entities aggregated.
	Candidates int
}

// TopKThreshold answers a conjunction of subjective predicates with
// Fagin's TA over precomputed degree lists, returning the top-k entities
// by product-combined degree and the access statistics.
//
// For in-domain predicates the degrees come from the per-marker
// precomputation, so the ranking can deviate slightly from the exact
// RankPredicates scores (which embed the query phrasing); the top sets
// agree closely, and the bench harness quantifies both the agreement and
// the saved work.
func (db *DB) TopKThreshold(predicates []string, k int) ([]ResultRow, TopKStats, error) {
	var stats TopKStats
	if k <= 0 {
		k = 10
	}
	sources := make([]*taSource, 0, len(predicates))
	for _, text := range predicates {
		in := db.Interpret(text)
		src, err := db.taSourceFor(text, in)
		if err != nil {
			return nil, stats, err
		}
		sources = append(sources, src)
	}
	if len(sources) == 0 {
		return nil, stats, nil
	}

	v := db.fuzzyVariant()
	aggregate := func(entity string) float64 {
		score := 1.0
		for _, s := range sources {
			score = v.And(score, s.degree[entity])
		}
		return score
	}

	seen := map[string]bool{}
	var top []ResultRow
	worstTop := func() float64 {
		if len(top) < k {
			return -1
		}
		return top[len(top)-1].Score
	}
	insert := func(entity string, score float64) {
		row := ResultRow{EntityID: entity, Score: score}
		pos := sort.Search(len(top), func(i int) bool {
			if top[i].Score != score {
				return top[i].Score < score
			}
			return top[i].EntityID > entity
		})
		top = append(top, ResultRow{})
		copy(top[pos+1:], top[pos:])
		top[pos] = row
		if len(top) > k {
			top = top[:k]
		}
	}

	maxLen := 0
	for _, s := range sources {
		if len(s.list) > maxLen {
			maxLen = len(s.list)
		}
	}
	for depth := 0; depth < maxLen; depth++ {
		threshold := 1.0
		progressed := false
		for _, s := range sources {
			if depth >= len(s.list) {
				threshold = v.And(threshold, 0)
				continue
			}
			progressed = true
			stats.SortedAccesses++
			entry := s.list[depth]
			threshold = v.And(threshold, entry.degree)
			if !seen[entry.entity] {
				seen[entry.entity] = true
				stats.Candidates++
				if score := aggregate(entry.entity); score > 0 {
					insert(entry.entity, score)
				}
			}
		}
		stats.Depth = depth + 1
		// TA stop condition, deliberately strict: stop only once the k-th
		// best aggregate EXCEEDS the threshold. The classic >= stop admits
		// a boundary ambiguity — an unseen entity whose aggregate exactly
		// equals the k-th score could be kept or dropped depending on list
		// order — which would make the result depend on how the entity
		// space is partitioned. Strict comparison guarantees every unseen
		// entity is strictly worse than the whole top-k, so a sharded
		// deployment's merged top-k is byte-identical to the monolith's.
		// Tradeoff, accepted deliberately: a persistent exact tie between
		// the k-th score and the threshold (e.g. membership degrees
		// saturating at exactly 1.0 for >= k entities) keeps TA scanning to
		// the end of the lists — worst-case O(n), the same bound as the
		// full-scan /query path — because enumerating every potential tie
		// is precisely what deployment-invariance requires.
		if !progressed || (len(top) >= k && worstTop() > threshold) {
			break
		}
	}
	return top, stats, nil
}

// taSourceFor materializes the TA access structure for one interpreted
// predicate.
func (db *DB) taSourceFor(text string, in Interpretation) (*taSource, error) {
	v := db.fuzzyVariant()
	switch {
	case in.Method == MethodFallback:
		// Fallback predicates have no precomputed lists; score all
		// entities once (they rarely dominate the conjunction anyway).
		toks := textproc.Tokenize(text)
		list := make([]entityDegree, 0, len(db.entityIDs))
		for _, id := range db.entityIDs {
			list = append(list, entityDegree{
				entity: id,
				degree: ir.Sigmoid(db.EntityIndex.Score(id, toks), db.cfg.FallbackCenter),
			})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].degree != list[j].degree {
				return list[i].degree > list[j].degree
			}
			return list[i].entity < list[j].entity
		})
		return sourceFromList(list), nil
	case len(in.Terms) == 1:
		return sourceFromList(db.degreeList(in.Terms[0])), nil
	default:
		// Multi-term interpretation: merge the per-term lists under the
		// interpretation's connective.
		merged := map[string]float64{}
		for ti, term := range in.Terms {
			for _, e := range db.degreeList(term) {
				if ti == 0 {
					merged[e.entity] = e.degree
				} else if in.Disjunction {
					merged[e.entity] = v.Or(merged[e.entity], e.degree)
				} else {
					merged[e.entity] = v.And(merged[e.entity], e.degree)
				}
			}
		}
		list := make([]entityDegree, 0, len(merged))
		for id, d := range merged {
			list = append(list, entityDegree{entity: id, degree: d})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].degree != list[j].degree {
				return list[i].degree > list[j].degree
			}
			return list[i].entity < list[j].entity
		})
		return sourceFromList(list), nil
	}
}

func sourceFromList(list []entityDegree) *taSource {
	m := make(map[string]float64, len(list))
	for _, e := range list {
		m[e.entity] = e.degree
	}
	return &taSource{list: list, degree: m}
}
