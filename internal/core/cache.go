package core

import "sync"

// Query-time caching infrastructure. A built DB memoizes deterministic
// derived values (interpretations, phrase representations, TA degree
// lists); under concurrent query serving those memos are the only shared
// mutable state on the read path, so they are sharded RWMutex caches:
// reads on a warm cache take a shard-local read lock, and independent
// keys contend only within their shard.
//
// Values are computed outside any lock. That admits duplicate computation
// when several goroutines miss on the same cold key simultaneously, but
// every cached function here is a pure function of the built database, so
// duplicates are identical and the first stored value wins.

// cacheShardCount trades memory for contention; 32 shards keeps the
// per-shard mutex hot-set small at typical GOMAXPROCS.
const cacheShardCount = 32

// cacheShard is one lock-striped segment of a sharded cache.
type cacheShard[V any] struct {
	mu sync.RWMutex
	m  map[string]V
}

// shardedCache is a string-keyed concurrent memo table. The zero value is
// ready to use, mirroring the lazily-initialized maps it replaces.
type shardedCache[V any] struct {
	shards [cacheShardCount]cacheShard[V]
}

// shardIndex is FNV-1a over the key, folded to a shard.
func shardIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % cacheShardCount)
}

// get returns the cached value for key, if present.
func (c *shardedCache[V]) get(key string) (V, bool) {
	s := &c.shards[shardIndex(key)]
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	return v, ok
}

// getOrCompute returns the cached value for key, computing and storing it
// on a miss. compute runs without any lock held; when racing computers
// collide on one key, the first stored value is returned to everyone.
func (c *shardedCache[V]) getOrCompute(key string, compute func() V) V {
	if v, ok := c.get(key); ok {
		return v
	}
	v := c.compute(key, compute)
	return v
}

func (c *shardedCache[V]) compute(key string, compute func() V) V {
	v := compute()
	s := &c.shards[shardIndex(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.m[key]; ok {
		return prev // another goroutine won the race; keep its value
	}
	if s.m == nil {
		s.m = make(map[string]V)
	}
	s.m[key] = v
	return v
}

// reset drops every cached entry (used when a mutation invalidates the
// derived values).
func (c *shardedCache[V]) reset() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
}
