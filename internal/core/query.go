package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/embedding"
	"repro/internal/fuzzy"
	"repro/internal/ir"
	"repro/internal/relstore"
	"repro/internal/sqlparse"
	"repro/internal/textproc"
)

// QueryOptions tune a single query execution.
type QueryOptions struct {
	// TopK caps the ranked result; 0 means the parsed LIMIT or all.
	TopK int
	// UseMarkers selects the fast marker-summary membership path (true,
	// the default used by OpineDB) or the no-marker scan path (false, the
	// Table 7 ablation).
	UseMarkers bool
	// ReviewFilter, when non-nil, restricts the reviews whose extractions
	// count toward degrees of truth — the §1.1 "only consider opinions of
	// people who reviewed at least 10 hotels" feature. Implies the scan
	// path for subjective predicates (summaries must be recomputed).
	ReviewFilter func(reviewer string, day int) bool
	// AttributeWeights personalizes ranking (§7's user-profile direction):
	// an interpreted predicate over attribute A has its degree of truth
	// raised to AttributeWeights[A]. Weights > 1 sharpen (the user cares a
	// lot: mediocre evidence hurts more), weights in (0,1) soften, and the
	// exponent form keeps the product t-norm's algebra intact
	// (d^w ∈ [0,1], monotone, and w=1 is a no-op).
	AttributeWeights map[string]float64
}

// DefaultQueryOptions returns the standard execution mode.
func DefaultQueryOptions() QueryOptions {
	return QueryOptions{TopK: 10, UseMarkers: true}
}

// ResultRow is one ranked entity with its final degree of truth and the
// per-predicate breakdown.
type ResultRow struct {
	EntityID string
	Score    float64
	// PredicateScores maps subjective predicate text → its degree of truth
	// for this entity.
	PredicateScores map[string]float64
}

// QueryResult is a ranked answer with interpretation diagnostics.
type QueryResult struct {
	Rows []ResultRow
	// Interpretations maps predicate text → how it was interpreted.
	Interpretations map[string]Interpretation
	// Rewritten is the fuzzy-SQL rendering of the compiled query, e.g.
	// "price_pn < 150 ⊗ room_cleanliness.8 ⊗ (service.4 ⊕ style.2)".
	Rewritten string
}

// Query parses and executes a subjective SQL statement with default
// options, returning the fuzzy-ranked result (Figure 4's full flow).
func (db *DB) Query(sql string) (*QueryResult, error) {
	return db.QueryWithOptions(sql, DefaultQueryOptions())
}

// QueryWithOptions parses and executes a subjective SQL statement.
func (db *DB) QueryWithOptions(sql string, opts QueryOptions) (*QueryResult, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.Execute(q, opts)
}

// RankPredicates ranks entities for a bare conjunction of subjective
// predicate texts — the experiment harness's entry point, bypassing SQL.
func (db *DB) RankPredicates(predicates []string, objective func(entityID string) bool, opts QueryOptions) (*QueryResult, error) {
	cond := make([]sqlparse.Cond, 0, len(predicates))
	for _, p := range predicates {
		cond = append(cond, sqlparse.SubjCond{Text: p})
	}
	q := &sqlparse.Query{
		Select: []string{"*"},
		From:   "Entities",
		Where:  sqlparse.AndCond{Children: cond},
	}
	return db.execute(q, opts, objective)
}

// Execute runs a parsed query.
func (db *DB) Execute(q *sqlparse.Query, opts QueryOptions) (*QueryResult, error) {
	return db.execute(q, opts, nil)
}

func (db *DB) execute(q *sqlparse.Query, opts QueryOptions, extraObjective func(string) bool) (*QueryResult, error) {
	entities, err := db.Rel.Table("Entities")
	if err != nil {
		return nil, err
	}
	// Interpret every subjective predicate once per query (§3.2).
	interps := map[string]Interpretation{}
	queryReps := map[string]embedding.Vector{}
	queryToks := map[string][]string{}
	for _, text := range sqlparse.SubjectivePredicates(q.Where) {
		if _, done := interps[text]; done {
			continue
		}
		interps[text] = db.Interpret(text)
		queryReps[text] = db.Embed.Rep(text)
		queryToks[text] = textproc.Tokenize(text)
	}

	// Compile the condition tree to a fuzzy expression template. Objective
	// comparisons become per-entity constants, resolved in the closure.
	var filter *extractionFilter
	if opts.ReviewFilter != nil {
		filter = &extractionFilter{fn: opts.ReviewFilter}
	}

	var rows []ResultRow
	for _, id := range db.entityIDs {
		row := entities.ByKey(id)
		if len(row) == 0 {
			continue
		}
		if extraObjective != nil && !extraObjective(id) {
			continue
		}
		expr, err := db.compileCond(q.Where, entities, row[0])
		if err != nil {
			return nil, err
		}
		predScores := map[string]float64{}
		env := func(text string) float64 {
			if s, ok := predScores[text]; ok {
				return s
			}
			s := db.degreeOf(id, interps[text], queryReps[text], queryToks[text], opts, filter)
			predScores[text] = s
			return s
		}
		score := 1.0
		if expr != nil {
			score = expr.Eval(db.fuzzyVariant(), env)
		}
		if score <= 0 {
			continue
		}
		rows = append(rows, ResultRow{EntityID: id, Score: score, PredicateScores: predScores})
	}

	// Rank: by fuzzy score desc (the subjective default) or by an explicit
	// ORDER BY column.
	if q.OrderBy != "" {
		if err := sortByColumn(rows, entities, q.OrderBy, q.OrderDesc); err != nil {
			return nil, err
		}
	} else {
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Score != rows[j].Score {
				return rows[i].Score > rows[j].Score
			}
			return rows[i].EntityID < rows[j].EntityID
		})
	}
	// An explicit LIMIT in the SQL wins; opts.TopK is the default cap for
	// queries without one.
	limit := opts.TopK
	if q.Limit > 0 {
		limit = q.Limit
	}
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return &QueryResult{
		Rows:            rows,
		Interpretations: interps,
		Rewritten:       db.rewrite(q.Where, interps),
	}, nil
}

// degreeOf computes one predicate's degree of truth for one entity
// according to its interpretation (§3.3).
func (db *DB) degreeOf(entityID string, in Interpretation, qRep embedding.Vector, qToks []string, opts QueryOptions, filter *extractionFilter) float64 {
	if in.Method == MethodFallback {
		// sigmoid(BM25(D, q) − c) over the entity document (§3.2).
		return ir.Sigmoid(db.EntityIndex.Score(entityID, qToks), db.cfg.FallbackCenter)
	}
	var degrees []float64
	for _, term := range in.Terms {
		attr := db.Attr(term.Attr)
		if attr == nil {
			continue
		}
		var d float64
		switch {
		case filter != nil:
			d = db.Membership.DegreeScan(db, entityID, attr, qRep, filter.predicate())
		case opts.UseMarkers:
			d = db.Membership.DegreeMarker(db, entityID, attr, term.Marker, qRep)
		default:
			d = db.Membership.DegreeScan(db, entityID, attr, qRep, nil)
		}
		if w, ok := opts.AttributeWeights[term.Attr]; ok && w > 0 {
			d = math.Pow(d, w)
		}
		degrees = append(degrees, d)
	}
	if len(degrees) == 0 {
		return 0
	}
	v := db.fuzzyVariant()
	acc := degrees[0]
	for _, d := range degrees[1:] {
		if in.Disjunction {
			acc = v.Or(acc, d)
		} else {
			acc = v.And(acc, d)
		}
	}
	return acc
}

// compileCond translates the parsed WHERE tree into a fuzzy expression for
// one entity row: objective comparisons fold to Const 0/1, subjective
// predicates stay symbolic.
func (db *DB) compileCond(c sqlparse.Cond, entities *relstore.Table, row relstore.Row) (fuzzy.Expr, error) {
	if c == nil {
		return nil, nil
	}
	switch t := c.(type) {
	case sqlparse.SubjCond:
		return fuzzy.Pred{ID: t.Text}, nil
	case sqlparse.CmpCond:
		ok, err := evalCmp(t, entities, row)
		if err != nil {
			return nil, err
		}
		if ok {
			return fuzzy.Const{Value: 1}, nil
		}
		return fuzzy.Const{Value: 0}, nil
	case sqlparse.AndCond:
		children := make([]fuzzy.Expr, 0, len(t.Children))
		for _, ch := range t.Children {
			e, err := db.compileCond(ch, entities, row)
			if err != nil {
				return nil, err
			}
			children = append(children, e)
		}
		return fuzzy.NewAnd(children...), nil
	case sqlparse.OrCond:
		children := make([]fuzzy.Expr, 0, len(t.Children))
		for _, ch := range t.Children {
			e, err := db.compileCond(ch, entities, row)
			if err != nil {
				return nil, err
			}
			children = append(children, e)
		}
		return fuzzy.NewOr(children...), nil
	case sqlparse.NotCond:
		e, err := db.compileCond(t.Child, entities, row)
		if err != nil {
			return nil, err
		}
		return fuzzy.Not{Child: e}, nil
	default:
		return nil, fmt.Errorf("core: unknown condition %T", c)
	}
}

// evalCmp evaluates an objective comparison against an entity row.
func evalCmp(c sqlparse.CmpCond, entities *relstore.Table, row relstore.Row) (bool, error) {
	v, err := entities.Get(row, c.Column)
	if err != nil {
		return false, err
	}
	if v == nil {
		return false, nil // SQL NULL semantics: unknown comparisons filter out
	}
	switch want := c.Value.(type) {
	case float64:
		var have float64
		switch x := v.(type) {
		case float64:
			have = x
		case int64:
			have = float64(x)
		default:
			return false, fmt.Errorf("core: column %s is not numeric", c.Column)
		}
		switch c.Op {
		case "<":
			return have < want, nil
		case "<=":
			return have <= want, nil
		case ">":
			return have > want, nil
		case ">=":
			return have >= want, nil
		case "=":
			return have == want, nil
		case "!=":
			return have != want, nil
		}
	case string:
		have, ok := v.(string)
		if !ok {
			return false, fmt.Errorf("core: column %s is not a string", c.Column)
		}
		switch c.Op {
		case "=":
			return strings.EqualFold(have, want), nil
		case "!=":
			return !strings.EqualFold(have, want), nil
		default:
			return false, fmt.Errorf("core: operator %s not supported for strings", c.Op)
		}
	}
	return false, fmt.Errorf("core: unsupported comparison %v", c)
}

// sortByColumn orders result rows by an objective column.
func sortByColumn(rows []ResultRow, entities *relstore.Table, col string, desc bool) error {
	key := make(map[string]float64, len(rows))
	for _, r := range rows {
		eRows := entities.ByKey(r.EntityID)
		if len(eRows) == 0 {
			continue
		}
		v, err := entities.Get(eRows[0], col)
		if err != nil {
			return err
		}
		switch x := v.(type) {
		case float64:
			key[r.EntityID] = x
		case int64:
			key[r.EntityID] = float64(x)
		default:
			return fmt.Errorf("core: cannot ORDER BY non-numeric column %s", col)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := key[rows[i].EntityID], key[rows[j].EntityID]
		if a != b {
			if desc {
				return a > b
			}
			return a < b
		}
		return rows[i].EntityID < rows[j].EntityID
	})
	return nil
}

// rewrite renders the compiled fuzzy SQL for diagnostics, mirroring the
// paper's rewritten-query examples.
func (db *DB) rewrite(c sqlparse.Cond, interps map[string]Interpretation) string {
	if c == nil {
		return "true"
	}
	switch t := c.(type) {
	case sqlparse.SubjCond:
		return interps[t.Text].String()
	case sqlparse.CmpCond:
		return fmt.Sprintf("%s %s %v", t.Column, t.Op, t.Value)
	case sqlparse.AndCond:
		parts := make([]string, len(t.Children))
		for i, ch := range t.Children {
			parts[i] = db.rewrite(ch, interps)
		}
		return "(" + strings.Join(parts, " ⊗ ") + ")"
	case sqlparse.OrCond:
		parts := make([]string, len(t.Children))
		for i, ch := range t.Children {
			parts[i] = db.rewrite(ch, interps)
		}
		return "(" + strings.Join(parts, " ⊕ ") + ")"
	case sqlparse.NotCond:
		return "¬" + db.rewrite(t.Child, interps)
	default:
		return "?"
	}
}

// extractionFilter adapts a reviewer/day predicate to extraction records,
// caching per-reviewer decisions.
type extractionFilter struct {
	fn    func(reviewer string, day int) bool
	cache map[string]bool
}

func (f *extractionFilter) predicate() func(*Extraction) bool {
	if f.cache == nil {
		f.cache = map[string]bool{}
	}
	return func(e *Extraction) bool {
		key := e.Reviewer + "|" + fmt.Sprint(e.Day)
		if v, ok := f.cache[key]; ok {
			return v
		}
		v := f.fn(e.Reviewer, e.Day)
		f.cache[key] = v
		return v
	}
}
