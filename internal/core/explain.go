package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explanation justifies one entity's rank for one query: per-predicate
// interpretation, degree of truth, the marker summary behind it, and
// sample review evidence — the §4.2.2 provenance promise ("any result
// returned can be supported with evidence from the reviews") as a public
// API.
type Explanation struct {
	EntityID   string
	Score      float64
	Predicates []PredicateExplanation
}

// PredicateExplanation explains one predicate's contribution.
type PredicateExplanation struct {
	Predicate      string
	Method         Method
	Interpretation string
	Degree         float64
	// Evidence holds up to maxEvidence supporting phrases per interpreted
	// term, strongest markers first.
	Evidence []EvidenceItem
}

// EvidenceItem is one supporting extraction.
type EvidenceItem struct {
	Attribute string
	Marker    string
	ReviewID  string
	Phrase    string
}

const maxEvidence = 5

// Explain justifies one result row of a query. The result must come from
// the same DB; unknown entities yield an empty explanation.
func (db *DB) Explain(res *QueryResult, entityID string) Explanation {
	out := Explanation{EntityID: entityID}
	var row *ResultRow
	for i := range res.Rows {
		if res.Rows[i].EntityID == entityID {
			row = &res.Rows[i]
			break
		}
	}
	if row == nil {
		return out
	}
	out.Score = row.Score
	preds := make([]string, 0, len(res.Interpretations))
	for p := range res.Interpretations {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	for _, p := range preds {
		in := res.Interpretations[p]
		pe := PredicateExplanation{
			Predicate:      p,
			Method:         in.Method,
			Interpretation: in.String(),
			Degree:         row.PredicateScores[p],
		}
		for _, term := range in.Terms {
			attr := db.Attr(term.Attr)
			if attr == nil {
				continue
			}
			for _, ext := range db.ProvenanceOf(term.Attr, entityID, term.Marker) {
				if len(pe.Evidence) >= maxEvidence {
					break
				}
				pe.Evidence = append(pe.Evidence, EvidenceItem{
					Attribute: term.Attr,
					Marker:    attr.Markers[term.Marker].Name,
					ReviewID:  ext.ReviewID,
					Phrase:    ext.Phrase,
				})
			}
		}
		out.Predicates = append(out.Predicates, pe)
	}
	return out
}

// String renders the explanation for terminals.
func (e Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (score %.3f)\n", e.EntityID, e.Score)
	for _, pe := range e.Predicates {
		fmt.Fprintf(&b, "  %q → [%s] %s, degree %.3f\n",
			pe.Predicate, pe.Method, pe.Interpretation, pe.Degree)
		for _, ev := range pe.Evidence {
			fmt.Fprintf(&b, "    %s≈%q: review %s says %q\n",
				ev.Attribute, ev.Marker, ev.ReviewID, ev.Phrase)
		}
		if len(pe.Evidence) == 0 && pe.Method == MethodFallback {
			fmt.Fprintf(&b, "    (matched by raw-text retrieval; see the entity's reviews)\n")
		}
	}
	return b.String()
}
