package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/embedding"
	"repro/internal/extract"
	"repro/internal/fuzzy"
	"repro/internal/ir"
	"repro/internal/kdtree"
	"repro/internal/relstore"
	"repro/internal/sentiment"
	"repro/internal/textproc"
)

// Config controls database construction and query processing.
type Config struct {
	// MarkersPerAttr is k, the number of markers discovered per attribute
	// (§4.2.1; the component experiments use 10).
	MarkersPerAttr int
	// W2VThreshold is θ1 of Figure 5: minimum phrase similarity for the
	// word2vec interpretation to be accepted. The paper uses 0.5 with
	// 300-dim word2vec trained on 515k reviews; our 48-dim SGNS on a much
	// smaller corpus has a higher random-cosine noise floor, so the
	// calibrated default is 0.75.
	W2VThreshold float64
	// CooccurThreshold is θ2: the minimum lift of the top attribute's
	// tf-idf score over the mean attribute score before the co-occurrence
	// interpretation is trusted; below it OpineDB falls back to text
	// retrieval.
	CooccurThreshold float64
	// CooccurTopK is k, the number of top reviews mined by the
	// co-occurrence method.
	CooccurTopK int
	// CooccurTopN is n, the number of attributes in a co-occurrence
	// interpretation's disjunction.
	CooccurTopN int
	// CooccurMinIDF gates the co-occurrence stage: the predicate must
	// contain at least one indexed content word rarer than this BM25 IDF,
	// otherwise the mined top-k reviews are noise ("good" matches
	// everything) and the stage declines.
	CooccurMinIDF float64
	// FallbackCenter is c in sigmoid(BM25(D,q) − c) (§3.2).
	FallbackCenter float64
	// MinClassifierConfidence drops extractions the attribute classifier
	// is unsure about.
	MinClassifierConfidence float64
	// MinPhraseCoverage drops extractions whose opinion phrase is mostly
	// made of words outside every seed expansion — out-of-schema concepts
	// ("romantic getaway") must stay out of the linguistic domains so the
	// co-occurrence and fallback stages can handle them (§3.2).
	MinPhraseCoverage float64
	// FuzzyVariant selects the t-norm (the paper uses Product).
	FuzzyVariant fuzzy.Variant
	// MinPhraseCount prunes linguistic-domain phrases seen fewer times.
	MinPhraseCount int
	// UseSubstitutionIndex enables the Appendix B index.
	UseSubstitutionIndex bool
	// Embedding is the word2vec training configuration.
	Embedding embedding.TrainConfig
	// TaggerEpochs is the perceptron training epoch count.
	TaggerEpochs int
	// Seed drives all stochastic build steps.
	Seed int64
	// BuildWorkers bounds the worker pool parallelizing the hot build
	// stages (tokenization, per-review extraction, per-attribute marker
	// discovery). 0 means GOMAXPROCS; 1 forces a sequential build. The
	// built database is byte-identical for every worker count under a
	// fixed Seed: stochastic stages draw from per-task RNGs derived from
	// the master seed in declaration order, and parallel results merge in
	// input order.
	BuildWorkers int
}

// workerCount resolves BuildWorkers to an effective pool size.
func (c Config) workerCount() int {
	if c.BuildWorkers > 0 {
		return c.BuildWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultConfig returns the configuration used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		MarkersPerAttr:          10,
		W2VThreshold:            0.75,
		CooccurThreshold:        0.4,
		CooccurTopK:             50,
		CooccurTopN:             2,
		CooccurMinIDF:           3.0,
		FallbackCenter:          4.0,
		MinClassifierConfidence: 0.2,
		MinPhraseCoverage:       0.6,
		FuzzyVariant:            fuzzy.Product,
		MinPhraseCount:          1,
		UseSubstitutionIndex:    false,
		Embedding:               embedding.DefaultTrainConfig(),
		TaggerEpochs:            6,
		Seed:                    1,
		BuildWorkers:            0, // GOMAXPROCS
	}
}

// parallelFor runs fn(i) for every i in [0, n) across the given number of
// workers, blocking until all complete. Work items are claimed by an
// atomic counter, so the schedule is nondeterministic — callers must make
// fn(i) depend only on i (writing fn's result to slot i of a preallocated
// slice and merging in index order keeps parallel builds deterministic).
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// AttrSpec declares one subjective attribute for the schema designer:
// its name, whether it is categorical, and the seed sets for the
// attribute classifier (§4.2).
type AttrSpec struct {
	Name        string
	Categorical bool
	Seeds       classify.SeedSet
}

// BuildInput carries everything the construction pipeline (§4) needs.
type BuildInput struct {
	Name string
	// Entities with their objective attributes; the first entity's
	// Objective map determines the Entities relation's columns.
	Entities []EntityData
	// Reviews is the raw review corpus.
	Reviews []ReviewData
	// Attributes is the designer's subjective schema with seeds.
	Attributes []AttrSpec
	// TaggedTraining is the small labeled set for the extractor
	// (the paper's 912 hand-labeled hotel sentences).
	TaggedTraining []extract.Sentence
	// MembershipLabels optionally trains the LR membership functions; when
	// empty a calibrated heuristic membership function is used.
	MembershipLabels []MembershipLabel
}

// Build constructs a subjective database: §4.1 extraction, §4.2 attribute
// classification and marker discovery, §4.2.2 marker-summary aggregation,
// plus the IR indexes and interpreter state of §3.
func Build(in BuildInput, cfg Config) (*DB, error) {
	if len(in.Entities) == 0 {
		return nil, fmt.Errorf("core: no entities")
	}
	if len(in.Reviews) == 0 {
		return nil, fmt.Errorf("core: no reviews")
	}
	if len(in.Attributes) == 0 {
		return nil, fmt.Errorf("core: no subjective attributes declared")
	}
	if len(in.TaggedTraining) == 0 {
		return nil, fmt.Errorf("core: no tagged training sentences for the extractor")
	}
	if cfg.MarkersPerAttr < 2 {
		return nil, fmt.Errorf("core: MarkersPerAttr must be >= 2, got %d", cfg.MarkersPerAttr)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	db := &DB{
		Name:                 in.Name,
		Rel:                  relstore.NewDB(),
		attrByName:           map[string]*SubjectiveAttribute{},
		Summaries:            map[string]map[string]*MarkerSummary{},
		ReviewSentiments:     map[string]float64{},
		reviewsPerReviewer:   map[string]int{},
		extIndex:             map[string]map[string][]int{},
		extByReview:          map[string][]int{},
		reviewsWithAttrCount: map[string]int{},
		cfg:                  cfg,
	}

	// ---- Relational layer: Entities and Reviews tables.
	if err := buildEntityTable(db, in.Entities); err != nil {
		return nil, err
	}
	if err := buildReviewTable(db, in.Reviews); err != nil {
		return nil, err
	}
	for _, e := range in.Entities {
		db.entityIDs = append(db.entityIDs, e.ID)
	}
	sort.Strings(db.entityIDs)

	// ---- Corpus statistics + word2vec (trained on the review corpus, §3.2).
	// Tokenization and sentiment scoring are pure per review, so they fan
	// out across the worker pool; the order-sensitive aggregation into
	// corpus stats stays sequential over the indexed results.
	workers := cfg.workerCount()
	stats := textproc.NewCorpusStats()
	docTokens := make([][]string, len(in.Reviews))
	docSentis := make([]float64, len(in.Reviews))
	parallelFor(len(in.Reviews), workers, func(i int) {
		docTokens[i] = textproc.Tokenize(in.Reviews[i].Text)
		docSentis[i] = sentiment.ScoreTokens(docTokens[i])
	})
	for i, rv := range in.Reviews {
		stats.AddDocument(docTokens[i])
		db.ReviewSentiments[rv.ID] = docSentis[i]
		db.reviewsPerReviewer[rv.Reviewer]++
	}
	model, err := embedding.Train(docTokens, stats, cfg.Embedding, rng)
	if err != nil {
		return nil, fmt.Errorf("core: embedding training: %w", err)
	}
	db.Embed = model

	// ---- Extractor (§4.1): train the tagger, pair with the rule pairer.
	tagger, err := extract.TrainPerceptron(in.TaggedTraining, cfg.TaggerEpochs, rng)
	if err != nil {
		return nil, fmt.Errorf("core: tagger training: %w", err)
	}
	db.Extractor = &extract.Extractor{Tagger: tagger, Pairer: extract.RulePairer{}}

	// ---- Attribute classifier (§4.2): seed expansion + softmax.
	seeds := make([]classify.SeedSet, 0, len(in.Attributes))
	for _, a := range in.Attributes {
		seeds = append(seeds, a.Seeds)
	}
	expanded := classify.ExpandSeeds(seeds, model, classify.DefaultExpandConfig(), rng)
	attrClf, err := classify.TrainSoftmax(expanded, classify.DefaultSoftmaxConfig(), rng)
	if err != nil {
		return nil, fmt.Errorf("core: attribute classifier: %w", err)
	}

	// ---- Run extraction over every review sentence. Each review's
	// extraction is a pure function of the trained models, so reviews fan
	// out across the worker pool; the per-review results merge in review
	// order, keeping extraction IDs and phrase counts deterministic.
	perReview := make([][]rawExtraction, len(in.Reviews))
	parallelFor(len(in.Reviews), workers, func(i int) {
		perReview[i] = extractReview(db.Extractor, attrClf, in.Reviews[i], cfg)
	})
	var raw []rawExtraction
	phraseCounts := map[string]map[string]int{} // attr → phrase → count
	for _, a := range in.Attributes {
		phraseCounts[a.Name] = map[string]int{}
	}
	for _, exts := range perReview {
		for _, r := range exts {
			raw = append(raw, r)
			phraseCounts[r.attribute][r.phrase]++
		}
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("core: extraction produced no opinions")
	}

	// ---- Marker discovery per attribute (§4.2.1). Attributes fan out
	// across the worker pool; each stochastic discovery draws from its own
	// RNG seeded from the master stream in declaration order, so the
	// discovered markers are identical for every worker count.
	markerSeeds := make([]int64, len(in.Attributes))
	for i := range markerSeeds {
		markerSeeds[i] = rng.Int63()
	}
	attrs := make([]*SubjectiveAttribute, len(in.Attributes))
	attrErrs := make([]error, len(in.Attributes))
	parallelFor(len(in.Attributes), workers, func(i int) {
		spec := in.Attributes[i]
		attr := &SubjectiveAttribute{
			Name:          spec.Name,
			Categorical:   spec.Categorical,
			DomainPhrases: map[string]int{},
			phraseMarker:  map[string]int{},
		}
		for p, c := range phraseCounts[spec.Name] {
			if c >= cfg.MinPhraseCount {
				attr.DomainPhrases[p] = c
			}
		}
		if len(attr.DomainPhrases) == 0 {
			// Attribute never observed; keep it with a single neutral marker
			// so queries against it degrade gracefully.
			attr.Markers = []Marker{{Name: spec.Name, Centroid: make(embedding.Vector, model.Dim())}}
			attrs[i] = attr
			return
		}
		if spec.Categorical {
			if err := discoverCategoricalMarkers(attr, model, cfg.MarkersPerAttr, rand.New(rand.NewSource(markerSeeds[i]))); err != nil {
				attrErrs[i] = fmt.Errorf("core: markers for %s: %w", spec.Name, err)
				return
			}
		} else {
			discoverLinearMarkers(attr, model, cfg.MarkersPerAttr)
		}
		attrs[i] = attr
	})
	for _, err := range attrErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, attr := range attrs {
		db.Attrs = append(db.Attrs, attr)
		db.attrByName[attr.Name] = attr
	}

	// ---- Materialize the extraction relation + marker summaries (§4.2.2).
	if err := buildExtractionTable(db); err != nil {
		return nil, err
	}
	extTable, _ := db.Rel.Table("Extractions")
	for _, a := range db.Attrs {
		db.Summaries[a.Name] = map[string]*MarkerSummary{}
	}
	for _, r := range raw {
		attr := db.attrByName[r.attribute]
		mi, ok := attr.MarkerOf(r.phrase)
		if !ok {
			continue // pruned from the linguistic domain
		}
		id := len(db.Extractions)
		ext := Extraction{
			ID:        id,
			EntityID:  r.review.EntityID,
			ReviewID:  r.review.ID,
			Reviewer:  r.review.Reviewer,
			Day:       r.review.Day,
			Attribute: r.attribute,
			Aspect:    r.aspect,
			Phrase:    r.phrase,
			Marker:    mi,
			Sentiment: r.sentiment,
		}
		db.Extractions = append(db.Extractions, ext)
		if err := extTable.Insert(relstore.Row{
			int64(id), ext.EntityID, ext.ReviewID, ext.Reviewer,
			int64(ext.Day), ext.Attribute, ext.Aspect, ext.Phrase,
			int64(mi), ext.Sentiment,
		}); err != nil {
			return nil, err
		}
		addToSummary(db, attr, ext)
		if db.extIndex[ext.Attribute] == nil {
			db.extIndex[ext.Attribute] = map[string][]int{}
		}
		db.extIndex[ext.Attribute][ext.EntityID] = append(db.extIndex[ext.Attribute][ext.EntityID], id)
		db.extByReview[ext.ReviewID] = append(db.extByReview[ext.ReviewID], id)
	}
	// Count positive reviews containing each attribute (the idf(A)
	// denominator, over the same population the co-occurrence miner
	// searches).
	for _, s := range db.ReviewSentiments {
		if s > 0 {
			db.positiveReviews++
		}
	}
	seenAttrReview := map[string]map[string]bool{}
	for _, ext := range db.Extractions {
		if db.ReviewSentiments[ext.ReviewID] <= 0 {
			continue
		}
		if seenAttrReview[ext.Attribute] == nil {
			seenAttrReview[ext.Attribute] = map[string]bool{}
		}
		if !seenAttrReview[ext.Attribute][ext.ReviewID] {
			seenAttrReview[ext.Attribute][ext.ReviewID] = true
			db.reviewsWithAttrCount[ext.Attribute]++
		}
	}

	// Finalize summaries: precompute per-marker centroids.
	for _, byEntity := range db.Summaries {
		for _, s := range byEntity {
			s.finalize()
		}
	}

	// ---- IR indexes (§3.2): per-review and per-entity-document.
	db.ReviewIndex = ir.NewIndex()
	for i, rv := range in.Reviews {
		db.ReviewIndex.Add(rv.ID, docTokens[i])
	}
	entityDocs := map[string][]string{}
	for _, rv := range in.Reviews {
		entityDocs[rv.EntityID] = append(entityDocs[rv.EntityID], rv.Text)
	}
	db.EntityIndex = ir.EntityDocs(entityDocs)

	// ---- Membership functions (§3.3).
	db.Membership = newMembershipModel(db, in.MembershipLabels, rng)

	// ---- Optional Appendix B substitution index over the full linguistic
	// domain.
	if cfg.UseSubstitutionIndex {
		var phrases []string
		for _, a := range db.Attrs {
			for p := range a.DomainPhrases {
				phrases = append(phrases, p)
			}
		}
		sort.Strings(phrases)
		db.SubIndex = kdtree.NewSubstitutionIndex(phrases, model)
	}
	return db, nil
}

// rawExtraction is one extracted, attribute-classified opinion awaiting
// marker assignment.
type rawExtraction struct {
	review    ReviewData
	aspect    string
	phrase    string
	attribute string
	sentiment float64
}

// extractReview runs §4.1 extraction and §4.2 attribute classification
// over one review's sentences. Pure function of the trained extractor and
// classifier, which makes it the unit of work for the build worker pool.
func extractReview(ex *extract.Extractor, attrClf *classify.Softmax, rv ReviewData, cfg Config) []rawExtraction {
	var out []rawExtraction
	for _, sent := range textproc.Sentences(rv.Text) {
		toks := textproc.Tokenize(sent)
		if len(toks) == 0 {
			continue
		}
		for _, op := range ex.Extract(toks) {
			if op.Phrase == "" {
				continue
			}
			full := op.Phrase
			if op.Aspect != "" {
				full = op.Aspect + " " + op.Phrase
			}
			// Out-of-schema gate: phrases mostly made of words no seed
			// expansion covers ("perfect romantic getaway") are not
			// forced into an attribute; they stay raw-text-only so the
			// co-occurrence and IR-fallback stages keep their signal.
			if attrClf.KnownTokenFraction(full) < cfg.MinPhraseCoverage {
				continue
			}
			attr, conf := attrClf.Classify(full)
			if conf < cfg.MinClassifierConfidence {
				continue
			}
			// The linguistic variation is the aspect+opinion
			// concatenation (§4.2.1); the aspect noun disambiguates
			// otherwise-identical opinion words across attributes
			// ("food excellent" vs "cocktails excellent").
			out = append(out, rawExtraction{
				review:    rv,
				aspect:    op.Aspect,
				phrase:    full,
				attribute: attr,
				sentiment: sentiment.ScorePhrase(op.Phrase),
			})
		}
	}
	return out
}

// discoverLinearMarkers implements §4.2.1's linearly-ordered method: sort
// the linguistic domain by sentiment, split into k equal-count buckets,
// and take each bucket's central phrase as the marker.
func discoverLinearMarkers(attr *SubjectiveAttribute, model *embedding.Model, k int) {
	type scored struct {
		phrase string
		count  int
		senti  float64
	}
	items := make([]scored, 0, len(attr.DomainPhrases))
	for p, c := range attr.DomainPhrases {
		items = append(items, scored{phrase: p, count: c, senti: sentiment.ScorePhrase(p)})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].senti != items[j].senti {
			return items[i].senti < items[j].senti
		}
		return items[i].phrase < items[j].phrase
	})
	if k > len(items) {
		k = len(items)
	}
	// Equal-count buckets over the sorted domain.
	buckets := make([][]scored, k)
	for i, it := range items {
		b := i * k / len(items)
		buckets[b] = append(buckets[b], it)
	}
	attr.Markers = attr.Markers[:0]
	for bi, b := range buckets {
		if len(b) == 0 {
			continue
		}
		center := b[len(b)/2]
		m := Marker{Name: center.phrase}
		var sSum float64
		cen := make(embedding.Vector, model.Dim())
		var n float64
		for _, it := range b {
			attr.phraseMarker[it.phrase] = len(attr.Markers)
			sSum += it.senti
			cen.Add(model.Rep(it.phrase))
			n++
		}
		m.Sentiment = sSum / n
		cen.Scale(1 / n)
		m.Centroid = cen
		attr.Markers = append(attr.Markers, m)
		_ = bi
	}
}

// discoverCategoricalMarkers implements §4.2.1's categorical method:
// k-means over phrase embeddings; the medoid phrase of each cluster is the
// suggested marker.
func discoverCategoricalMarkers(attr *SubjectiveAttribute, model *embedding.Model, k int, rng *rand.Rand) error {
	phrases := make([]string, 0, len(attr.DomainPhrases))
	for p := range attr.DomainPhrases {
		phrases = append(phrases, p)
	}
	sort.Strings(phrases)
	points := make([]embedding.Vector, len(phrases))
	for i, p := range phrases {
		points[i] = model.Rep(p)
	}
	if k > len(points) {
		k = len(points)
	}
	res, err := cluster.KMeans(points, k, 50, rng)
	if err != nil {
		return err
	}
	// Build markers from non-empty clusters; remap indices.
	remap := make([]int, k)
	for c := 0; c < k; c++ {
		remap[c] = -1
		if res.Medoids[c] < 0 {
			continue
		}
		m := Marker{Name: phrases[res.Medoids[c]], Centroid: res.Centroids[c]}
		var sSum, n float64
		for i, p := range phrases {
			if res.Assign[i] == c {
				sSum += sentiment.ScorePhrase(p)
				n++
			}
		}
		if n == 0 {
			continue
		}
		m.Sentiment = sSum / n
		remap[c] = len(attr.Markers)
		attr.Markers = append(attr.Markers, m)
	}
	for i, p := range phrases {
		if mi := remap[res.Assign[i]]; mi >= 0 {
			attr.phraseMarker[p] = mi
		}
	}
	return nil
}

// addToSummary incrementally folds one extraction into the summary view.
func addToSummary(db *DB, attr *SubjectiveAttribute, ext Extraction) {
	byEntity := db.Summaries[attr.Name]
	s, ok := byEntity[ext.EntityID]
	if !ok {
		s = newMarkerSummary(len(attr.Markers), db.Embed.Dim())
		byEntity[ext.EntityID] = s
	}
	s.add(ext.Marker, ext.Sentiment, db.Embed.Rep(ext.Phrase), ext.ID)
}

// buildEntityTable creates the Entities relation from the first entity's
// objective attribute map.
func buildEntityTable(db *DB, entities []EntityData) error {
	cols := []relstore.Column{{Name: "id", Type: relstore.TString}}
	var objNames []string
	for name := range entities[0].Objective {
		objNames = append(objNames, name)
	}
	sort.Strings(objNames)
	for _, name := range objNames {
		var ty relstore.Type
		switch entities[0].Objective[name].(type) {
		case string:
			ty = relstore.TString
		case int64:
			ty = relstore.TInt
		case float64:
			ty = relstore.TFloat
		case bool:
			ty = relstore.TBool
		default:
			return fmt.Errorf("core: objective attribute %s has unsupported type %T",
				name, entities[0].Objective[name])
		}
		cols = append(cols, relstore.Column{Name: name, Type: ty})
	}
	t, err := db.Rel.Create(relstore.Schema{Name: "Entities", Columns: cols, Key: "id"})
	if err != nil {
		return err
	}
	for _, e := range entities {
		row := relstore.Row{e.ID}
		for _, name := range objNames {
			row = append(row, e.Objective[name])
		}
		if err := t.Insert(row); err != nil {
			return fmt.Errorf("core: entity %s: %w", e.ID, err)
		}
	}
	return nil
}

func buildReviewTable(db *DB, reviews []ReviewData) error {
	t, err := db.Rel.Create(relstore.Schema{
		Name: "Reviews",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.TString},
			{Name: "entity", Type: relstore.TString},
			{Name: "reviewer", Type: relstore.TString},
			{Name: "day", Type: relstore.TInt},
			{Name: "text", Type: relstore.TString},
		},
		Key: "entity",
	})
	if err != nil {
		return err
	}
	for _, rv := range reviews {
		if err := t.Insert(relstore.Row{rv.ID, rv.EntityID, rv.Reviewer, int64(rv.Day), rv.Text}); err != nil {
			return err
		}
	}
	return nil
}

func buildExtractionTable(db *DB) error {
	_, err := db.Rel.Create(relstore.Schema{
		Name: "Extractions",
		Columns: []relstore.Column{
			{Name: "id", Type: relstore.TInt},
			{Name: "entity", Type: relstore.TString},
			{Name: "review", Type: relstore.TString},
			{Name: "reviewer", Type: relstore.TString},
			{Name: "day", Type: relstore.TInt},
			{Name: "attribute", Type: relstore.TString},
			{Name: "aspect", Type: relstore.TString},
			{Name: "phrase", Type: relstore.TString},
			{Name: "marker", Type: relstore.TInt},
			{Name: "sentiment", Type: relstore.TFloat},
		},
		Key: "entity",
	})
	return err
}
