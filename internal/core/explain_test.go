package core_test

import (
	"strings"
	"testing"
)

func TestExplainTopResult(t *testing.T) {
	_, db := testDB(t)
	res, err := db.Query(`select * from Hotels where "has really clean rooms" and "has friendly staff" limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	top := res.Rows[0].EntityID
	ex := db.Explain(res, top)
	if ex.EntityID != top || ex.Score != res.Rows[0].Score {
		t.Errorf("identity mismatch: %+v", ex)
	}
	if len(ex.Predicates) != 2 {
		t.Fatalf("explained %d predicates, want 2", len(ex.Predicates))
	}
	evidenced := 0
	for _, pe := range ex.Predicates {
		if pe.Degree < 0 || pe.Degree > 1 {
			t.Errorf("degree %v out of range", pe.Degree)
		}
		if pe.Interpretation == "" {
			t.Error("missing interpretation text")
		}
		if len(pe.Evidence) > 0 {
			evidenced++
			for _, ev := range pe.Evidence {
				if ev.Phrase == "" || ev.ReviewID == "" {
					t.Errorf("malformed evidence: %+v", ev)
				}
			}
		}
	}
	if evidenced == 0 {
		t.Error("no predicate produced review evidence for the top result")
	}
	s := ex.String()
	if !strings.Contains(s, top) || !strings.Contains(s, "degree") {
		t.Errorf("rendered explanation malformed:\n%s", s)
	}
}

func TestExplainUnknownEntity(t *testing.T) {
	_, db := testDB(t)
	res, err := db.Query(`select * from Hotels where "has friendly staff" limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	ex := db.Explain(res, "not-an-entity")
	if ex.Score != 0 || len(ex.Predicates) != 0 {
		t.Errorf("unknown entity should yield an empty explanation: %+v", ex)
	}
}

func TestExplainFallbackPredicate(t *testing.T) {
	_, db := testDB(t)
	res, err := db.Query(`select * from Hotels where "good for motorcyclists" limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Skip("no fallback results at this draw")
	}
	ex := db.Explain(res, res.Rows[0].EntityID)
	if len(ex.Predicates) != 1 {
		t.Fatalf("predicates = %d", len(ex.Predicates))
	}
	s := ex.String()
	if ex.Predicates[0].Method == "fallback" && !strings.Contains(s, "raw-text retrieval") {
		t.Errorf("fallback note missing:\n%s", s)
	}
}
