package core_test

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fuzzy"
	"repro/internal/harness"
)

// The test fixture builds one small hotel database shared by all tests;
// construction runs the full §4 pipeline (embedding training, tagger
// training, extraction, marker discovery, aggregation).
var (
	fixOnce sync.Once
	fixData *corpus.Dataset
	fixDB   *core.DB
	fixErr  error
)

func testDB(t *testing.T) (*corpus.Dataset, *core.DB) {
	t.Helper()
	fixOnce.Do(func() {
		cfg := corpus.SmallConfig()
		cfg.HotelsLondon, cfg.HotelsAmsterdam = 60, 25
		cfg.ReviewsPerHotel = 22
		fixData = corpus.GenerateHotels(cfg)
		c := core.DefaultConfig()
		c.MarkersPerAttr = 6
		fixDB, fixErr = harness.BuildDB(fixData, c, 700, 600)
	})
	if fixErr != nil {
		t.Fatalf("fixture build: %v", fixErr)
	}
	return fixData, fixDB
}

func TestBuildValidation(t *testing.T) {
	if _, err := core.Build(core.BuildInput{}, core.DefaultConfig()); err == nil {
		t.Error("empty input should fail")
	}
	in := core.BuildInput{
		Name:     "x",
		Entities: []core.EntityData{{ID: "e1", Objective: map[string]interface{}{"p": 1.0}}},
	}
	if _, err := core.Build(in, core.DefaultConfig()); err == nil {
		t.Error("missing reviews should fail")
	}
}

func TestBuildProducesSchema(t *testing.T) {
	d, db := testDB(t)
	if len(db.Attrs) != len(d.Aspects) {
		t.Fatalf("built %d attributes, want %d", len(db.Attrs), len(d.Aspects))
	}
	for _, a := range db.Attrs {
		if len(a.Markers) == 0 {
			t.Errorf("attribute %s has no markers", a.Name)
		}
		if len(a.Markers) > 6 {
			t.Errorf("attribute %s has %d markers, cap is 6", a.Name, len(a.Markers))
		}
		if len(a.DomainPhrases) == 0 {
			t.Errorf("attribute %s has empty linguistic domain", a.Name)
		}
	}
	// Relational layer present.
	for _, name := range []string{"Entities", "Reviews", "Extractions"} {
		if _, err := db.Rel.Table(name); err != nil {
			t.Errorf("missing relation %s: %v", name, err)
		}
	}
	if len(db.Extractions) == 0 {
		t.Fatal("no extractions")
	}
}

func TestLinearMarkersOrderedBySentiment(t *testing.T) {
	_, db := testDB(t)
	attr := db.Attr("room_cleanliness")
	if attr == nil {
		t.Fatal("missing room_cleanliness")
	}
	if attr.Categorical {
		t.Fatal("room_cleanliness should be linear")
	}
	prev := -2.0
	for _, m := range attr.Markers {
		if m.Sentiment < prev-1e-9 {
			t.Errorf("markers not sentiment-ordered: %v after %v", m.Sentiment, prev)
		}
		prev = m.Sentiment
	}
	// The top marker should be genuinely positive and the bottom negative:
	// the corpus contains both clean and dirty hotels.
	if attr.Markers[0].Sentiment >= 0 {
		t.Errorf("bottom marker sentiment = %v, want negative", attr.Markers[0].Sentiment)
	}
	if attr.Markers[len(attr.Markers)-1].Sentiment <= 0 {
		t.Errorf("top marker sentiment = %v, want positive", attr.Markers[len(attr.Markers)-1].Sentiment)
	}
}

func TestSummaryCountsConsistent(t *testing.T) {
	_, db := testDB(t)
	// The summary histogram totals must equal the extraction counts.
	perAttrEntity := map[string]map[string]float64{}
	for _, ext := range db.Extractions {
		if perAttrEntity[ext.Attribute] == nil {
			perAttrEntity[ext.Attribute] = map[string]float64{}
		}
		perAttrEntity[ext.Attribute][ext.EntityID]++
	}
	for attrName, byEntity := range perAttrEntity {
		for entity, want := range byEntity {
			s := db.Summary(attrName, entity)
			if s == nil {
				t.Fatalf("missing summary for %s/%s", attrName, entity)
			}
			if s.Total != want {
				t.Errorf("summary total %s/%s = %v, want %v", attrName, entity, s.Total, want)
			}
			var sum float64
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Total {
				t.Errorf("summary counts sum %v != total %v", sum, s.Total)
			}
		}
	}
}

func TestSummaryReflectsLatentQuality(t *testing.T) {
	d, db := testDB(t)
	attr := db.Attr("room_cleanliness")
	top := len(attr.Markers) - 1
	// Across entities, the positive-marker mass should track latent
	// cleanliness: compare the cleanest vs the dirtiest entity.
	var best, worst *corpus.Entity
	for _, e := range d.Entities {
		if best == nil || e.Latent["room_cleanliness"] > best.Latent["room_cleanliness"] {
			best = e
		}
		if worst == nil || e.Latent["room_cleanliness"] < worst.Latent["room_cleanliness"] {
			worst = e
		}
	}
	posMass := func(id string) float64 {
		s := db.Summary("room_cleanliness", id)
		if s == nil || s.Total == 0 {
			return 0
		}
		var pos float64
		for i := range s.Counts {
			if attr.Markers[i].Sentiment > 0.2 {
				pos += s.Counts[i]
			}
		}
		return pos / s.Total
	}
	if posMass(best.ID) <= posMass(worst.ID) {
		t.Errorf("positive mass: best=%v (θ=%.2f) should exceed worst=%v (θ=%.2f)",
			posMass(best.ID), best.Latent["room_cleanliness"],
			posMass(worst.ID), worst.Latent["room_cleanliness"])
	}
	_ = top
}

func TestInterpretW2VCleanRooms(t *testing.T) {
	_, db := testDB(t)
	in := db.Interpret("has really clean rooms")
	if in.Method != core.MethodW2V {
		t.Fatalf("method = %v, want w2v (interp: %+v)", in.Method, in)
	}
	if len(in.Terms) != 1 || in.Terms[0].Attr != "room_cleanliness" {
		t.Errorf("interpretation = %v, want room_cleanliness", in.String())
	}
	attr := db.Attr("room_cleanliness")
	m := attr.Markers[in.Terms[0].Marker]
	if m.Sentiment <= 0 {
		t.Errorf("matched marker %q (sentiment %.2f) should be at the positive end", m.Name, m.Sentiment)
	}
}

func TestInterpretCompositeUsesCooccurrence(t *testing.T) {
	_, db := testDB(t)
	in := db.Interpret("is a romantic getaway")
	if in.Method == core.MethodW2V {
		// "romantic" never appears in the linguistic domains (only in raw
		// review text), so w2v must not claim a confident match.
		if in.Similarity > 0.95 {
			t.Errorf("suspiciously confident w2v match for composite: %+v", in)
		}
	}
	if in.Method == core.MethodCooccur {
		attrs := map[string]bool{}
		for _, term := range in.Terms {
			attrs[term.Attr] = true
		}
		// The proxies are exceptional service and luxurious bathrooms.
		if !attrs["service"] && !attrs["style"] {
			t.Errorf("co-occurrence proxies = %v, want service and/or style", in.String())
		}
	}
}

func TestInterpretFallbackForOutOfSchema(t *testing.T) {
	_, db := testDB(t)
	in := db.Interpret("good for motorcyclists")
	if in.Method != core.MethodFallback {
		t.Errorf("method = %v (%v), want fallback", in.Method, in.String())
	}
}

func TestInterpretOnlyMethods(t *testing.T) {
	_, db := testDB(t)
	w := db.InterpretW2VOnly("spotless rooms")
	if len(w.Terms) == 0 {
		t.Error("w2v-only should always produce a best guess for in-vocabulary text")
	}
	c := db.InterpretCooccurOnly("spotless rooms")
	if c.Method != core.MethodCooccur {
		t.Errorf("cooccur-only method = %v", c.Method)
	}
}

func TestQueryEndToEnd(t *testing.T) {
	_, db := testDB(t)
	res, err := db.Query(`select * from Hotels
		where price_pn < 300 and "has really clean rooms" and "has friendly staff"
		limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no results")
	}
	if len(res.Rows) > 10 {
		t.Errorf("limit not applied: %d rows", len(res.Rows))
	}
	// Scores sorted descending and in (0, 1].
	prev := 2.0
	for _, r := range res.Rows {
		if r.Score <= 0 || r.Score > 1 {
			t.Errorf("score %v out of range", r.Score)
		}
		if r.Score > prev {
			t.Error("rows not sorted by score")
		}
		prev = r.Score
		// Objective filter respected.
		v, err := db.ObjectiveValue(r.EntityID, "price_pn")
		if err != nil {
			t.Fatal(err)
		}
		if v.(float64) >= 300 {
			t.Errorf("entity %s violates price filter (%.0f)", r.EntityID, v)
		}
	}
	if len(res.Interpretations) != 2 {
		t.Errorf("interpretations = %d, want 2", len(res.Interpretations))
	}
	if !strings.Contains(res.Rewritten, "⊗") {
		t.Errorf("rewritten query missing ⊗: %s", res.Rewritten)
	}
}

func TestQueryRanksCleanHotelsHigher(t *testing.T) {
	d, db := testDB(t)
	res, err := db.Query(`select * from Hotels where "spotless rooms" limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("only %d results", len(res.Rows))
	}
	topAvg, bottomAvg := 0.0, 0.0
	for i, r := range res.Rows {
		theta := d.EntityByID(r.EntityID).Latent["room_cleanliness"]
		if i < 3 {
			topAvg += theta / 3
		}
	}
	// Average latent cleanliness over all entities for comparison.
	var all float64
	for _, e := range d.Entities {
		all += e.Latent["room_cleanliness"]
	}
	bottomAvg = all / float64(len(d.Entities))
	if topAvg <= bottomAvg {
		t.Errorf("top-3 latent cleanliness %.3f should beat corpus mean %.3f", topAvg, bottomAvg)
	}
}

func TestFallbackQueryFindsFlaggedEntities(t *testing.T) {
	d, db := testDB(t)
	var flagged []string
	for _, e := range d.Entities {
		if e.Flags["motorcycle"] {
			flagged = append(flagged, e.ID)
		}
	}
	if len(flagged) == 0 {
		t.Skip("no flagged entities at this scale")
	}
	res, err := db.Query(`select * from Hotels where "good for motorcyclists" limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("fallback query returned nothing")
	}
	isFlagged := map[string]bool{}
	for _, id := range flagged {
		isFlagged[id] = true
	}
	if !isFlagged[res.Rows[0].EntityID] {
		t.Errorf("top fallback result %s is not a flagged entity", res.Rows[0].EntityID)
	}
}

func TestScanPathAgreesWithMarkerPath(t *testing.T) {
	_, db := testDB(t)
	q := `select * from Hotels where "has really clean rooms" limit 10`
	optsM := core.DefaultQueryOptions()
	resM, err := db.QueryWithOptions(q, optsM)
	if err != nil {
		t.Fatal(err)
	}
	optsS := core.DefaultQueryOptions()
	optsS.UseMarkers = false
	resS, err := db.QueryWithOptions(q, optsS)
	if err != nil {
		t.Fatal(err)
	}
	if len(resM.Rows) == 0 || len(resS.Rows) == 0 {
		t.Fatal("one of the paths returned nothing")
	}
	// Rankings need not be identical, but the top-10 sets should overlap
	// substantially (Table 7's "quality remains mostly unchanged").
	setM := map[string]bool{}
	for _, r := range resM.Rows {
		setM[r.EntityID] = true
	}
	overlap := 0
	for _, r := range resS.Rows {
		if setM[r.EntityID] {
			overlap++
		}
	}
	if overlap < len(resS.Rows)/2 {
		t.Errorf("marker/scan top-10 overlap only %d of %d", overlap, len(resS.Rows))
	}
}

func TestReviewQualification(t *testing.T) {
	_, db := testDB(t)
	// Only reviews by prolific reviewers (>= 3 reviews here) count.
	opts := core.DefaultQueryOptions()
	opts.ReviewFilter = func(reviewer string, day int) bool {
		return db.ReviewerReviewCount(reviewer) >= 3
	}
	res, err := db.QueryWithOptions(`select * from Hotels where "has really clean rooms" limit 10`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("qualified query returned nothing")
	}
	// A filter that rejects everything must yield zero degrees.
	optsNone := core.DefaultQueryOptions()
	optsNone.ReviewFilter = func(string, int) bool { return false }
	resNone, err := db.QueryWithOptions(`select * from Hotels where "has really clean rooms" limit 10`, optsNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(resNone.Rows) != 0 {
		t.Errorf("all-rejecting filter still returned %d rows", len(resNone.Rows))
	}
}

func TestDateQualifiedQuery(t *testing.T) {
	_, db := testDB(t)
	opts := core.DefaultQueryOptions()
	opts.ReviewFilter = func(reviewer string, day int) bool { return day >= 1825 } // recent half
	res, err := db.QueryWithOptions(`select * from Hotels where "has friendly staff" limit 10`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("date-qualified query returned nothing")
	}
}

func TestProvenance(t *testing.T) {
	_, db := testDB(t)
	attr := db.Attr("room_cleanliness")
	// Find an entity with extractions for the attribute.
	var entity string
	for id, s := range db.Summaries["room_cleanliness"] {
		if s.Total > 0 {
			entity = id
			break
		}
	}
	if entity == "" {
		t.Fatal("no entity with cleanliness extractions")
	}
	s := db.Summary("room_cleanliness", entity)
	for mi := range attr.Markers {
		if s.Counts[mi] == 0 {
			continue
		}
		exts := db.ProvenanceOf("room_cleanliness", entity, mi)
		if len(exts) != int(s.Counts[mi]) {
			t.Errorf("provenance count %d != histogram count %v", len(exts), s.Counts[mi])
		}
		for _, e := range exts {
			if e.EntityID != entity || e.Attribute != "room_cleanliness" || e.Marker != mi {
				t.Errorf("provenance record mismatch: %+v", e)
			}
		}
	}
	if got := db.ProvenanceOf("room_cleanliness", entity, 99); got != nil {
		t.Error("out-of-range marker should yield nil provenance")
	}
}

func TestFuzzyVariantAffectsScores(t *testing.T) {
	d, db := testDB(t)
	_ = d
	texts := []string{"has really clean rooms", "has friendly staff"}
	opts := core.DefaultQueryOptions()
	resProd, err := db.RankPredicates(texts, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild is too expensive; validate at the fuzzy layer instead: the
	// per-predicate scores must combine as products under the default
	// variant.
	for _, r := range resProd.Rows[:min(3, len(resProd.Rows))] {
		prod := 1.0
		for _, text := range texts {
			prod *= r.PredicateScores[text]
		}
		if diff := prod - r.Score; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("score %v != product of predicate scores %v", r.Score, prod)
		}
	}
}

func TestOrderByOverridesRanking(t *testing.T) {
	_, db := testDB(t)
	res, err := db.Query(`select * from Hotels where "has really clean rooms" order by price_pn asc limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, r := range res.Rows {
		v, _ := db.ObjectiveValue(r.EntityID, "price_pn")
		p := v.(float64)
		if prev >= 0 && p < prev {
			t.Error("ORDER BY price asc violated")
		}
		prev = p
	}
}

func TestQueryErrors(t *testing.T) {
	_, db := testDB(t)
	if _, err := db.Query("not sql at all"); err == nil {
		t.Error("garbage SQL should error")
	}
	if _, err := db.Query(`select * from Hotels where nosuchcolumn < 5`); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := db.Query(`select * from Hotels where name < 5`); err == nil {
		t.Error("numeric comparison on string column should error")
	}
	if _, err := db.Query(`select * from Hotels where "clean" order by name`); err == nil {
		t.Error("ORDER BY string column should error")
	}
}

func TestMembershipAccuracyInBand(t *testing.T) {
	_, db := testDB(t)
	// The paper reports 71–75% LR accuracy; on synthetic ground truth we
	// accept a broad band but demand clearly-better-than-chance.
	if db.Membership.MarkerAccuracy < 0.6 {
		t.Errorf("marker LR accuracy = %v, want >= 0.6", db.Membership.MarkerAccuracy)
	}
}

func TestConfigValidation(t *testing.T) {
	d, _ := testDB(t)
	rng := rand.New(rand.NewSource(1))
	in := harness.BuildInputFromDataset(d, 50, 0, rng)
	bad := core.DefaultConfig()
	bad.MarkersPerAttr = 1
	if _, err := core.Build(in, bad); err == nil {
		t.Error("MarkersPerAttr=1 should fail")
	}
	in2 := in
	in2.TaggedTraining = nil
	if _, err := core.Build(in2, core.DefaultConfig()); err == nil {
		t.Error("missing tagged training should fail")
	}
	in3 := in
	in3.Attributes = nil
	if _, err := core.Build(in3, core.DefaultConfig()); err == nil {
		t.Error("missing attributes should fail")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Keep fuzzy import used even if variant tests change.
var _ = fuzzy.Product
