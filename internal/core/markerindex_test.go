package core

import (
	"sync"
	"testing"
)

// TestMarkerIndex covers the lazily built name→index map: hits, misses,
// and the linear-scan-compatible duplicate rule (lowest index wins).
func TestMarkerIndex(t *testing.T) {
	a := &SubjectiveAttribute{
		Markers: []Marker{
			{Name: "dirty"}, {Name: "clean"}, {Name: "spotless"}, {Name: "clean"},
		},
	}
	for name, want := range map[string]int{
		"dirty": 0, "clean": 1, "spotless": 2, "unknown": -1, "": -1,
	} {
		if got := a.MarkerIndex(name); got != want {
			t.Errorf("MarkerIndex(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestMarkerIndexConcurrent races the lazy first build from many readers
// (run under -race); every caller must see the same complete map.
func TestMarkerIndexConcurrent(t *testing.T) {
	a := &SubjectiveAttribute{
		Markers: []Marker{{Name: "awful"}, {Name: "fine"}, {Name: "great"}},
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, m := range a.Markers {
				if got := a.MarkerIndex(m.Name); got != i {
					errs <- m.Name
					return
				}
			}
			if a.MarkerIndex("nope") != -1 {
				errs <- "nope"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for name := range errs {
		t.Errorf("concurrent MarkerIndex(%q) wrong", name)
	}
}
