package core_test

import (
	"testing"

	"repro/internal/core"
)

// TestDegreeListsInvalidatedOnRebuild ensures TA results reflect the
// installed weighting rather than a stale precomputation.
func TestDegreeListsInvalidatedOnRebuild(t *testing.T) {
	_, db := testDB(t)
	preds := []string{"has really clean rooms"}
	before, _, err := db.TopKThreshold(preds, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out almost everything via an aggressive recency weighting:
	// only the newest reviews count.
	prev := db.RebuildSummaries(core.RecencyWeight(3650, 1))
	defer func() {
		db.RestoreSummaries(prev)
	}()
	after, _, err := db.TopKThreshold(preds, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 || len(after) == 0 {
		t.Skip("empty rankings at this draw")
	}
	// Scores must differ for at least one entity (the weighting collapsed
	// nearly all mass); identical score vectors imply a stale cache.
	changed := false
	beforeScores := map[string]float64{}
	for _, r := range before {
		beforeScores[r.EntityID] = r.Score
	}
	for _, r := range after {
		if s, ok := beforeScores[r.EntityID]; !ok || s != r.Score {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("TA scores identical after rebuild; degree lists look stale")
	}
	// And restoring brings the original TA ranking back.
	db.RestoreSummaries(prev)
	restored, _, err := db.TopKThreshold(preds, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if restored[i].EntityID != before[i].EntityID || restored[i].Score != before[i].Score {
			t.Fatal("restore did not reproduce the original TA ranking")
		}
	}
}

// TestAddReviewInvalidatesTACaches mirrors the staleness check for
// incremental ingestion.
func TestAddReviewInvalidatesTACaches(t *testing.T) {
	_, db := testDB(t)
	entity := firstSummarizedEntity(t, db, "room_cleanliness")
	preds := []string{"has really clean rooms"}
	if _, _, err := db.TopKThreshold(preds, 5); err != nil { // warm cache
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		err := db.AddReview(core.ReviewData{
			ID:       "ta-cache-" + string(rune('a'+i)),
			EntityID: entity,
			Reviewer: "cachetester",
			Day:      3600,
			Text:     "The room was spotless. The carpet was very clean. The room was immaculate.",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	rows, _, err := db.TopKThreshold(preds, len(db.EntityIDs()))
	if err != nil {
		t.Fatal(err)
	}
	// The freshly praised entity must appear with a nonzero degree.
	for _, r := range rows {
		if r.EntityID == entity {
			if r.Score <= 0 {
				t.Errorf("entity %s score %v after six glowing reviews", entity, r.Score)
			}
			return
		}
	}
	t.Errorf("entity %s missing from TA ranking after ingestion", entity)
}
