package core_test

// The concurrent-reader guarantee: a built DB serves Query,
// TopKThreshold and Interpret from any number of goroutines with no
// external locking, and every concurrent result is identical to the
// sequential run. This suite is the -race workload backing that claim —
// it hammers all three entry points (cold caches included: the fixture
// interleaves cache-filling first touches across goroutines) and
// deep-compares against sequential baselines.

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
)

// concurrentWorkload assembles the shared-DB read workload: SQL queries
// exercising the full execution path, predicate conjunctions for the TA
// path, and bare predicates for the interpreter (spanning all three
// Figure 5 stages, including the cooccur/fallback ones that walk the IR
// indexes).
func concurrentWorkload() (sqls []string, topkSets [][]string, preds []string) {
	sqls = []string{
		`select * from Entities where "has really clean rooms" limit 5`,
		`select * from Entities where price_pn < 250 and "has friendly staff" limit 8`,
		`select * from Entities where "quiet rooms" and "comfortable beds" limit 5`,
		`select * from Entities where "has really clean rooms" or "spotless bathrooms" limit 6`,
	}
	topkSets = [][]string{
		{"has really clean rooms"},
		{"has really clean rooms", "has friendly staff"},
		{"quiet rooms", "comfortable beds", "nice view"},
	}
	preds = []string{
		"has really clean rooms", // w2v stage
		"spotless rooms",
		"romantic getaway", // composite → cooccur stage
		"good for motorcyclists",
		"friendly helpful staff",
		"terrible dirty rooms",
	}
	return
}

// runWorkload executes the whole workload once, returning a comparable
// snapshot of every result.
func runWorkload(db *core.DB, sqls []string, topkSets [][]string, preds []string) ([]*core.QueryResult, [][]core.ResultRow, []core.Interpretation, error) {
	queryRes := make([]*core.QueryResult, len(sqls))
	for i, q := range sqls {
		res, err := db.Query(q)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("query %q: %w", q, err)
		}
		queryRes[i] = res
	}
	topkRes := make([][]core.ResultRow, len(topkSets))
	for i, set := range topkSets {
		rows, _, err := db.TopKThreshold(set, 5)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("topk %v: %w", set, err)
		}
		topkRes[i] = rows
	}
	interpRes := make([]core.Interpretation, len(preds))
	for i, p := range preds {
		interpRes[i] = db.Interpret(p)
	}
	return queryRes, topkRes, interpRes, nil
}

// TestConcurrentReadersMatchSequential is the §3 serving guarantee under
// -race: ≥8 goroutines hammer Query, TopKThreshold and Interpret on one
// shared DB and every result must equal the sequential baseline.
func TestConcurrentReadersMatchSequential(t *testing.T) {
	_, db := testDB(t)
	sqls, topkSets, preds := concurrentWorkload()

	// Sequential baseline (also warms every cache the workload touches —
	// the concurrent phase below re-runs on warm caches; cold-cache
	// concurrency is covered by TestConcurrentColdStart).
	wantQuery, wantTopK, wantInterp, err := runWorkload(db, sqls, topkSets, preds)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 12
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				gotQuery, gotTopK, gotInterp, err := runWorkload(db, sqls, topkSets, preds)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				for i := range wantQuery {
					if !reflect.DeepEqual(gotQuery[i], wantQuery[i]) {
						errs <- fmt.Errorf("goroutine %d: query %d diverged from sequential run", g, i)
						return
					}
				}
				if !reflect.DeepEqual(gotTopK, wantTopK) {
					errs <- fmt.Errorf("goroutine %d: top-k diverged from sequential run", g)
					return
				}
				if !reflect.DeepEqual(gotInterp, wantInterp) {
					errs <- fmt.Errorf("goroutine %d: interpretations diverged from sequential run", g)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentColdStart exercises the cache-miss race: a fresh DB where
// many goroutines compute the same interpretations, degree lists and
// phrase reps simultaneously. Results must agree across goroutines even
// when duplicate computations collide in the caches.
func TestConcurrentColdStart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a private DB")
	}
	db := buildTinyDB(t, 8)
	sqls, topkSets, preds := concurrentWorkload()

	type snapshot struct {
		query  []*core.QueryResult
		topk   [][]core.ResultRow
		interp []core.Interpretation
	}
	const goroutines = 8
	snaps := make([]snapshot, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, k, in, err := runWorkload(db, sqls, topkSets, preds)
			snaps[g], errs[g] = snapshot{q, k, in}, err
		}()
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(snaps[g], snaps[0]) {
			t.Errorf("goroutine %d observed different results than goroutine 0", g)
		}
	}
}
