package core_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/corpus"
)

// minimalInput builds the smallest valid BuildInput for failure-injection
// variants.
func minimalInput(t *testing.T) core.BuildInput {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var reviews []core.ReviewData
	texts := []string{
		"The room was very clean. The staff was friendly.",
		"The room was dirty. The staff was rude.",
		"The room was spotless and the staff was kind.",
		"The carpet was stained. The receptionist was helpful.",
	}
	for i := 0; i < 40; i++ {
		reviews = append(reviews, core.ReviewData{
			ID:       "r" + strings.Repeat("0", 3-len(itoa(i)))[:max(0, 3-len(itoa(i)))] + itoa(i),
			EntityID: "e" + itoa(i%4),
			Reviewer: "rev" + itoa(i%7),
			Day:      i * 10,
			Text:     texts[i%len(texts)],
		})
	}
	return core.BuildInput{
		Name: "mini",
		Entities: []core.EntityData{
			{ID: "e0", Objective: map[string]interface{}{"price": 100.0}},
			{ID: "e1", Objective: map[string]interface{}{"price": 200.0}},
			{ID: "e2", Objective: map[string]interface{}{"price": 300.0}},
			{ID: "e3", Objective: map[string]interface{}{"price": nil}},
		},
		Reviews: reviews,
		Attributes: []core.AttrSpec{
			{Name: "room_cleanliness", Seeds: classify.SeedSet{
				Attribute: "room_cleanliness",
				Aspects:   []string{"room", "carpet"},
				Opinions:  []string{"clean", "dirty", "spotless", "stained"},
			}},
			{Name: "staff", Seeds: classify.SeedSet{
				Attribute: "staff",
				Aspects:   []string{"staff", "receptionist"},
				Opinions:  []string{"friendly", "rude", "kind", "helpful"},
			}},
		},
		TaggedTraining: corpus.TaggedFromAspects(corpus.HotelAspects(), corpus.HotelFillers(), 300, rng),
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestBuildMinimalCorpus(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MarkersPerAttr = 2
	db, err := core.Build(minimalInput(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Attrs) != 2 {
		t.Fatalf("attrs = %d", len(db.Attrs))
	}
	res, err := db.Query(`select * from E where "clean room" limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no results on minimal corpus")
	}
}

func TestNullObjectiveComparisons(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MarkersPerAttr = 2
	db, err := core.Build(minimalInput(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// e3 has a NULL price: it must be filtered out, not crash the query.
	res, err := db.Query(`select * from E where price < 1000 and "clean room" limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.EntityID == "e3" {
			t.Error("NULL-price entity passed a price comparison")
		}
	}
}

func TestBuildRejectsUnsupportedObjectiveType(t *testing.T) {
	in := minimalInput(t)
	in.Entities = []core.EntityData{
		{ID: "bad", Objective: map[string]interface{}{"weird": []int{1, 2}}},
	}
	if _, err := core.Build(in, core.DefaultConfig()); err == nil {
		t.Error("slice-typed objective attribute should fail the build")
	}
}

func TestBuildWithReviewsForUnknownEntities(t *testing.T) {
	// Reviews for entities not in the Entities relation are tolerated at
	// build time (they index and summarize under the unknown id) but the
	// unknown id never appears in query results.
	in := minimalInput(t)
	in.Reviews = append(in.Reviews, core.ReviewData{
		ID: "ghost", EntityID: "nonexistent", Reviewer: "x", Text: "The room was clean.",
	})
	cfg := core.DefaultConfig()
	cfg.MarkersPerAttr = 2
	db, err := core.Build(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`select * from E where "clean room" limit 50`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.EntityID == "nonexistent" {
			t.Error("unknown entity leaked into results")
		}
	}
}

func TestQueryOnEmptyPredicate(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MarkersPerAttr = 2
	db, err := core.Build(minimalInput(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pure objective query: degenerates to a filter, every passing entity
	// scores 1.
	res, err := db.Query(`select * from E where price < 250 limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (e0, e1)", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Score != 1 {
			t.Errorf("objective-only score = %v, want 1", r.Score)
		}
	}
	// No WHERE at all.
	all, err := db.Query(`select * from E limit 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != 4 {
		t.Fatalf("got %d rows, want all 4", len(all.Rows))
	}
}

func TestInterpretEmptyAndWhitespacePredicates(t *testing.T) {
	_, db := testDB(t)
	for _, text := range []string{"zzz qqq www", "   ", "12345"} {
		in := db.Interpret(text)
		if in.Method == "" {
			t.Errorf("no method for %q", text)
		}
		// Whatever the stage, querying with it must not panic and must
		// return a well-formed (possibly empty) result.
		res, err := db.RankPredicates([]string{text}, nil, core.DefaultQueryOptions())
		if err != nil {
			t.Fatalf("query with %q: %v", text, err)
		}
		for _, r := range res.Rows {
			if r.Score < 0 || r.Score > 1 {
				t.Errorf("score %v out of range", r.Score)
			}
		}
	}
}
