package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/embedding"
	"repro/internal/sentiment"
	"repro/internal/textproc"
)

// Method identifies which interpreter stage produced an interpretation.
type Method string

// Interpreter stages (Figure 5).
const (
	MethodW2V      Method = "w2v"
	MethodCooccur  Method = "cooccur"
	MethodFallback Method = "fallback"
)

// Interpretation is the output of the subjective query interpreter for one
// predicate: an expression over A.m terms, or a fallback marker.
type Interpretation struct {
	Predicate string
	Method    Method
	// Terms are the A.m targets; empty for fallback.
	Terms []AttrMarker
	// Disjunction is true when terms combine with ⊕ (the common case for
	// co-occurrence output); false combines with ⊗ (§3.2's "sometimes
	// outputs a conjunction").
	Disjunction bool
	// MatchedPhrase is the domain phrase the w2v method matched.
	MatchedPhrase string
	// Similarity is the w2v confidence (stage 1) or co-occurrence
	// confidence (stage 2).
	Similarity float64
}

// String renders the interpretation like the paper's examples, e.g.
// "service.exceptional ⊕ style.luxurious".
func (in Interpretation) String() string {
	if in.Method == MethodFallback {
		return fmt.Sprintf("fallback(%q)", in.Predicate)
	}
	parts := make([]string, len(in.Terms))
	for i, t := range in.Terms {
		parts[i] = t.Attr + "." + fmt.Sprint(t.Marker)
	}
	sep := " ⊕ "
	if !in.Disjunction {
		sep = " ⊗ "
	}
	return strings.Join(parts, sep)
}

// Interpret runs the three-stage predicate interpretation algorithm of
// §3.2 (Figure 5): word2vec matching against the linguistic domains, then
// co-occurrence mining over positive reviews, then text-retrieval
// fallback.
func (db *DB) Interpret(predicate string) Interpretation {
	return db.interpCache.getOrCompute(predicate, func() Interpretation {
		in, ok := db.interpretW2V(predicate, db.cfg.W2VThreshold)
		if !ok {
			in, ok = db.interpretCooccur(predicate, db.cfg.CooccurThreshold)
		}
		if !ok {
			in = Interpretation{Predicate: predicate, Method: MethodFallback}
		}
		return in
	})
}

// InterpretW2VOnly runs only the word2vec stage with the threshold
// disabled, always returning its best guess (empty Terms only for fully
// out-of-vocabulary predicates). Used by the Table 8 component study.
// Read-only: the override threshold is passed through rather than swapped
// into the shared config, so this is safe under concurrent readers.
func (db *DB) InterpretW2VOnly(predicate string) Interpretation {
	in, ok := db.interpretW2V(predicate, -1)
	if !ok {
		return Interpretation{Predicate: predicate, Method: MethodW2V}
	}
	return in
}

// InterpretCooccurOnly runs only the co-occurrence stage with the
// confidence threshold disabled. Used by the Table 8 component study.
// Read-only, like InterpretW2VOnly.
func (db *DB) InterpretCooccurOnly(predicate string) Interpretation {
	in, ok := db.interpretCooccur(predicate, -1)
	if !ok {
		return Interpretation{Predicate: predicate, Method: MethodCooccur}
	}
	return in
}

// interpretW2V finds the linguistic variation across all subjective
// attributes with the highest Eq. 2 similarity to the predicate; the
// interpretation is that variation's attribute and marker. Fails when the
// best similarity is under threshold (θ1; a negative threshold disables
// the gate for the component-study "only" mode).
func (db *DB) interpretW2V(predicate string, threshold float64) (Interpretation, bool) {
	// Vocabulary gate (skipped in the threshold-disabled "only" mode):
	// Eq. 1's IDF-weighted sum is meaningless when most content words are
	// out of vocabulary — "good for motorcyclists" must not collapse to
	// rep("good") and match the service domain.
	if threshold >= 0 && db.queryKnownFraction(predicate) <= 0.5 {
		return Interpretation{}, false
	}
	// Appendix B fast path when the substitution index is enabled.
	if db.SubIndex != nil {
		if match, fast := db.SubIndex.Lookup(predicate); fast && match != "" {
			if am, sim, ok := db.phraseToAttrMarker(match, predicate); ok && sim >= threshold {
				return Interpretation{
					Predicate:     predicate,
					Method:        MethodW2V,
					Terms:         []AttrMarker{am},
					MatchedPhrase: match,
					Similarity:    sim,
				}, true
			}
		}
	}
	var best struct {
		attr   *SubjectiveAttribute
		phrase string
		marker int
		sim    float64
	}
	best.sim = -1
	for _, attr := range db.Attrs {
		phrase, marker, sim := db.bestDomainMatch(attr, predicate)
		if sim > best.sim {
			best.attr, best.phrase, best.marker, best.sim = attr, phrase, marker, sim
		}
	}
	if best.attr == nil || best.sim < threshold {
		return Interpretation{}, false
	}
	return Interpretation{
		Predicate:     predicate,
		Method:        MethodW2V,
		Terms:         []AttrMarker{{Attr: best.attr.Name, Marker: best.marker}},
		MatchedPhrase: best.phrase,
		Similarity:    best.sim,
	}, true
}

// bestDomainMatch returns the linguistic variation of attr most similar to
// the query phrase (Eq. 2), with its marker.
//
// Similarity is sentiment-consistent: a variation whose sentiment opposes
// the query's is halved. Large-corpus word2vec separates "really clean"
// from "not clean at all" on its own; a small-corpus SGNS sees nearly the
// same context for both (they share "clean" and "room"), so polarity must
// be enforced explicitly or positive queries would resolve to negated
// variations and rank dirty hotels first.
func (db *DB) bestDomainMatch(attr *SubjectiveAttribute, query string) (phrase string, marker int, sim float64) {
	// The scan below is O(variations × embedding dim) and sits on both the
	// query interpreter and the ingestion prepare path, where the same
	// phrase texts recur constantly. Its inputs — the embedding model, the
	// attribute's marker schema, and the domain phrase lists — are all
	// frozen at build time (ingestion folds summaries, it never retrains),
	// so the winning (phrase, marker, sim) is memoized per (attr, query)
	// and never invalidated.
	m := db.domainMatches.getOrCompute(attr.Name+"\x00"+query, func() domainMatch {
		p, mk, s := db.scanDomainMatch(attr, query)
		return domainMatch{phrase: p, marker: mk, sim: s}
	})
	return m.phrase, m.marker, m.sim
}

// domainMatch is the memoized result of scanDomainMatch.
type domainMatch struct {
	phrase string
	marker int
	sim    float64
}

// scanDomainMatch is the uncached scan behind bestDomainMatch.
func (db *DB) scanDomainMatch(attr *SubjectiveAttribute, query string) (phrase string, marker int, sim float64) {
	qRep := db.Embed.Rep(query)
	if qRep.Norm() == 0 {
		return "", -1, 0
	}
	qSent := sentiment.ScorePhrase(query)
	// Track the best similarity per marker; on a small corpus many
	// variations of one attribute tie near the top ("room clean",
	// "room very clean", "room clean and tidy" all share the query's
	// words), so the marker is resolved among close candidates by
	// sentiment proximity to the query.
	bestPerMarker := make([]float64, len(attr.Markers))
	bestPhrase := make([]string, len(attr.Markers))
	for i := range bestPerMarker {
		bestPerMarker[i] = -1
	}
	sim = -1
	for _, p := range db.domainPhraseList(attr) {
		s := embedding.Cosine(qRep, db.phraseRep(p))
		if qSent*db.phraseSentiment(p) < -0.01 {
			s *= 0.5
		}
		m, ok := attr.MarkerOf(p)
		if !ok {
			continue
		}
		if s > bestPerMarker[m] {
			bestPerMarker[m] = s
			bestPhrase[m] = p
		}
		if s > sim {
			sim = s
		}
	}
	if sim < 0 {
		return "", -1, sim
	}
	marker = -1
	bestAdj := math.Inf(-1)
	for m := range attr.Markers {
		if bestPerMarker[m] < 0 {
			continue
		}
		adj := bestPerMarker[m]
		if !attr.Categorical {
			adj -= 0.5 * math.Abs(qSent-attr.Markers[m].Sentiment)
		}
		if adj > bestAdj {
			bestAdj = adj
			marker = m
		}
	}
	if marker < 0 {
		return "", -1, -1
	}
	return bestPhrase[marker], marker, sim
}

// phraseSentiment returns the cached sentiment of a domain phrase.
func (db *DB) phraseSentiment(phrase string) float64 {
	return db.phraseSentis.getOrCompute(phrase, func() float64 {
		return sentiment.ScorePhrase(phrase)
	})
}

// phraseToAttrMarker resolves a known domain phrase to its attribute and
// marker, returning the similarity to the original predicate.
func (db *DB) phraseToAttrMarker(phrase, predicate string) (AttrMarker, float64, bool) {
	for _, attr := range db.Attrs {
		if m, ok := attr.MarkerOf(phrase); ok {
			sim := embedding.Cosine(db.Embed.Rep(predicate), db.phraseRep(phrase))
			return AttrMarker{Attr: attr.Name, Marker: m}, sim, true
		}
	}
	return AttrMarker{}, 0, false
}

// interpretCooccur implements the co-occurrence method: search the top-k
// positive reviews matching the predicate (rank_score = BM25 · senti,
// Eq. 3), tally which attributes' extractions occur in them, score by
// freq_k(A)·idf(A), and emit the top-n attributes with their most
// frequent markers. threshold is θ2; negative disables the confidence and
// informativeness gates (the component-study "only" mode).
func (db *DB) interpretCooccur(predicate string, threshold float64) (Interpretation, bool) {
	toks := textproc.Tokenize(predicate)
	// "Reviews where q occurs" means reviews containing q's distinctive
	// terms: common words like "good" match everything and would swamp
	// the tally, so the search query keeps only informative terms when
	// any exist.
	var informative []string
	for _, t := range toks {
		if textproc.IsStopword(t) || db.ReviewIndex.DF(t) == 0 {
			continue
		}
		if db.ReviewIndex.IDF(t) >= db.cfg.CooccurMinIDF {
			informative = append(informative, t)
		}
	}
	if len(informative) > 0 {
		toks = informative
	} else if threshold >= 0 {
		// Informativeness gate (skipped in the threshold-disabled "only"
		// mode): with no distinctive indexed term the mined set is noise.
		return Interpretation{}, false
	}
	boost := func(reviewID string) float64 {
		s := db.ReviewSentiments[reviewID]
		if s <= 0 {
			return 0 // only positive reviews participate (§3.2)
		}
		return s
	}
	top := db.ReviewIndex.SearchBoosted(toks, db.cfg.CooccurTopK, boost)
	if len(top) == 0 {
		return Interpretation{}, false
	}
	// Tally attribute frequencies and per-attribute marker frequencies in
	// the top reviews.
	freq := map[string]float64{}
	markerFreq := map[string]map[int]float64{}
	reviewsWithAttr := map[string]map[string]bool{}
	for _, r := range top {
		for _, extID := range db.extByReview[r.ID] {
			ext := &db.Extractions[extID]
			freq[ext.Attribute]++
			if markerFreq[ext.Attribute] == nil {
				markerFreq[ext.Attribute] = map[int]float64{}
			}
			// Weight markers by sentiment-positivity: the co-occurrence
			// method mines positive reviews, so the positive markers of the
			// correlated attributes are the interpretation targets.
			markerFreq[ext.Attribute][ext.Marker]++
			if reviewsWithAttr[r.ID] == nil {
				reviewsWithAttr[r.ID] = map[string]bool{}
			}
			reviewsWithAttr[r.ID][ext.Attribute] = true
		}
	}
	if len(freq) == 0 {
		return Interpretation{}, false
	}
	type scored struct {
		attr  string
		score float64
	}
	var ranked []scored
	for a, f := range freq {
		idf := math.Log(float64(db.positiveReviews+1) / float64(db.reviewsWithAttrCount[a]+1))
		if idf < 0.05 {
			idf = 0.05 // ubiquitous attributes still carry some signal
		}
		ranked = append(ranked, scored{attr: a, score: f * idf})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].attr < ranked[j].attr
	})
	n := db.cfg.CooccurTopN
	if n > len(ranked) {
		n = len(ranked)
	}
	// Confidence: over-representation of the chosen attributes relative to
	// the *other* attributes in the same mined set. Reviews matched by a
	// genuine composite concept over-mention its proxy aspects (§3.2) —
	// "romantic getaway" reviews talk about service and bathrooms far
	// above base rate — whereas reviews matched by an out-of-schema
	// amenity mention every aspect at its usual rate. Normalizing by the
	// median attribute's over-representation cancels the uniform lift the
	// sentiment-boosted retrieval gives every attribute; +1 smoothing
	// deflates thin evidence.
	ratioOf := func(a string) float64 {
		var obs float64
		for _, attrs := range reviewsWithAttr {
			if attrs[a] {
				obs++
			}
		}
		exp := float64(len(top)) * float64(db.reviewsWithAttrCount[a]) / float64(db.positiveReviews+1)
		return obs / (exp + 1)
	}
	allRatios := make([]float64, 0, len(db.Attrs))
	for _, attr := range db.Attrs {
		allRatios = append(allRatios, ratioOf(attr.Name))
	}
	sort.Float64s(allRatios)
	median := allRatios[len(allRatios)/2]
	conf := 0.0
	for i := 0; i < n; i++ {
		if r := ratioOf(ranked[i].attr); median > 0 && r/median-1 > conf {
			conf = r/median - 1
		}
	}
	if conf < threshold {
		return Interpretation{}, false
	}
	terms := make([]AttrMarker, 0, n)
	for i := 0; i < n; i++ {
		a := ranked[i].attr
		attr := db.Attr(a)
		best, bestF := 0, -1.0
		for m, f := range markerFreq[a] {
			// Prefer frequent positive markers: positive reviews mention the
			// good end of each correlated scale.
			w := f * (1 + math.Max(0, attr.Markers[m].Sentiment))
			if w > bestF || (w == bestF && m < best) {
				best, bestF = m, w
			}
		}
		terms = append(terms, AttrMarker{Attr: a, Marker: best})
	}
	// ⊕ vs ⊗ (§3.2): if the chosen attributes are usually mentioned
	// together in the mined reviews, emit a conjunction.
	disjunction := true
	if len(terms) == 2 {
		joint, either := 0, 0
		for _, attrs := range reviewsWithAttr {
			a0, a1 := attrs[terms[0].Attr], attrs[terms[1].Attr]
			if a0 || a1 {
				either++
			}
			if a0 && a1 {
				joint++
			}
		}
		if either > 0 && float64(joint)/float64(either) > 0.5 {
			disjunction = false
		}
	}
	return Interpretation{
		Predicate:   predicate,
		Method:      MethodCooccur,
		Terms:       terms,
		Disjunction: disjunction,
		Similarity:  conf,
	}, true
}

// queryKnownFraction returns the fraction of the predicate's content words
// with embedding vectors, with light morphological leniency ("rooms"
// counts when "room" is in vocabulary).
func (db *DB) queryKnownFraction(predicate string) float64 {
	var known, total float64
	for _, t := range textproc.Tokenize(predicate) {
		if textproc.IsStopword(t) {
			continue
		}
		total++
		if db.Embed.Has(t) {
			known++
			continue
		}
		if strings.HasSuffix(t, "s") && db.Embed.Has(strings.TrimSuffix(t, "s")) {
			known++
			continue
		}
		if db.Embed.Has(t + "s") {
			known++
		}
	}
	if total == 0 {
		return 0
	}
	return known / total
}

// domainPhraseList returns the (cached, sorted) linguistic domain of attr.
func (db *DB) domainPhraseList(attr *SubjectiveAttribute) []string {
	return db.domainLists.getOrCompute(attr.Name, func() []string {
		out := make([]string, 0, len(attr.DomainPhrases))
		for p := range attr.DomainPhrases {
			out = append(out, p)
		}
		sort.Strings(out)
		return out
	})
}

// phraseRep returns the cached Eq. 1 representation of a domain phrase.
func (db *DB) phraseRep(phrase string) embedding.Vector {
	return db.phraseReps.getOrCompute(phrase, func() embedding.Vector {
		return db.Embed.Rep(phrase)
	})
}

// extractionsFor returns extraction ids for (attribute, entity).
func (db *DB) extractionsFor(attr, entityID string) []int {
	byEntity, ok := db.extIndex[attr]
	if !ok {
		return nil
	}
	return byEntity[entityID]
}
