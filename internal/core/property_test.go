package core_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/relstore"
)

// Property: interpretation is deterministic and cached — repeated calls
// return identical results.
func TestInterpretDeterministic(t *testing.T) {
	d, db := testDB(t)
	for i, p := range d.Predicates {
		if i >= 25 {
			break
		}
		a := db.Interpret(p.Text)
		b := db.Interpret(p.Text)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("interpretation of %q unstable", p.Text)
		}
	}
}

// Property: every degree of truth is in [0, 1] for arbitrary predicate /
// entity combinations, on both membership paths.
func TestDegreesAlwaysInUnitInterval(t *testing.T) {
	d, db := testDB(t)
	ids := db.EntityIDs()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		p := d.Predicates[rng.Intn(len(d.Predicates))]
		for _, useMarkers := range []bool{true, false} {
			opts := core.DefaultQueryOptions()
			opts.UseMarkers = useMarkers
			opts.TopK = 0
			qr, err := db.RankPredicates([]string{p.Text}, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range qr.Rows {
				if row.Score < 0 || row.Score > 1 {
					t.Fatalf("score %v out of range for %q", row.Score, p.Text)
				}
			}
		}
	}
	_ = ids
}

// Property: adding a conjunct can only lower (or keep) an entity's score
// under the product t-norm.
func TestConjunctionMonotone(t *testing.T) {
	_, db := testDB(t)
	opts := core.DefaultQueryOptions()
	opts.TopK = 0
	one, err := db.RankPredicates([]string{"has really clean rooms"}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	two, err := db.RankPredicates([]string{"has really clean rooms", "has friendly staff"}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	oneScore := map[string]float64{}
	for _, r := range one.Rows {
		oneScore[r.EntityID] = r.Score
	}
	for _, r := range two.Rows {
		if s, ok := oneScore[r.EntityID]; ok && r.Score > s+1e-9 {
			t.Fatalf("adding a conjunct raised %s: %v > %v", r.EntityID, r.Score, s)
		}
	}
}

// Property: marker summaries preserve count mass — for every (attribute,
// entity), Σ counts == total and provenance size == counts (uniform
// weights).
func TestSummaryMassInvariant(t *testing.T) {
	_, db := testDB(t)
	for attrName, byEntity := range db.Summaries {
		for entity, s := range byEntity {
			var sum float64
			var prov int
			for i := range s.Counts {
				sum += s.Counts[i]
				prov += len(s.Provenance[i])
			}
			if sum != s.Total {
				t.Fatalf("%s/%s: counts sum %v != total %v", attrName, entity, sum, s.Total)
			}
			if float64(prov) != s.Total {
				t.Fatalf("%s/%s: provenance %d != total %v", attrName, entity, prov, s.Total)
			}
		}
	}
}

// Property: every extraction's marker index is valid for its attribute
// and its phrase is in the attribute's linguistic domain.
func TestExtractionReferentialIntegrity(t *testing.T) {
	_, db := testDB(t)
	for _, ext := range db.Extractions {
		attr := db.Attr(ext.Attribute)
		if attr == nil {
			t.Fatalf("extraction %d references unknown attribute %q", ext.ID, ext.Attribute)
		}
		if ext.Marker < 0 || ext.Marker >= len(attr.Markers) {
			t.Fatalf("extraction %d marker %d out of range", ext.ID, ext.Marker)
		}
		// Build-time extractions carry domain phrases whose marker must
		// agree; incrementally added ones (AddReview) may introduce new
		// phrases classified by nearest variation, which only need a
		// valid marker (checked above).
		if m, ok := attr.MarkerOf(ext.Phrase); ok && m != ext.Marker {
			t.Fatalf("extraction %d phrase %q marker mismatch: %d vs %d",
				ext.ID, ext.Phrase, ext.Marker, m)
		}
		if ext.Sentiment < -1 || ext.Sentiment > 1 {
			t.Fatalf("extraction %d sentiment %v out of range", ext.ID, ext.Sentiment)
		}
	}
}

// Property: the extraction relation in relstore mirrors db.Extractions.
func TestExtractionTableMirrorsMemory(t *testing.T) {
	_, db := testDB(t)
	tbl, err := db.Rel.Table("Extractions")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != len(db.Extractions) {
		t.Fatalf("table %d rows, memory %d", tbl.Len(), len(db.Extractions))
	}
	count := 0
	tbl.Scan(func(row relstore.Row) bool {
		id := row[0].(int64)
		ext := db.Extractions[id]
		if row[1].(string) != ext.EntityID || row[7].(string) != ext.Phrase {
			t.Fatalf("row %d mismatch", id)
		}
		count++
		return count < 200 // spot check a prefix
	})
}

// Property: QueryOptions.TopK and SQL LIMIT interact correctly.
func TestLimitSemantics(t *testing.T) {
	_, db := testDB(t)
	opts := core.DefaultQueryOptions()
	opts.TopK = 7
	noLimit, err := db.QueryWithOptions(`select * from Hotels where "has friendly staff"`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(noLimit.Rows) > 7 {
		t.Errorf("TopK default not applied: %d rows", len(noLimit.Rows))
	}
	withLimit, err := db.QueryWithOptions(`select * from Hotels where "has friendly staff" limit 3`, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(withLimit.Rows) > 3 {
		t.Errorf("explicit LIMIT not honored: %d rows", len(withLimit.Rows))
	}
}

// quick.Check-style sanity for AttrMarker rendering.
func TestAttrMarkerString(t *testing.T) {
	f := func(marker uint8) bool {
		am := core.AttrMarker{Attr: "service", Marker: int(marker)}
		return len(am.String()) > len("service.")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
