package core

// Serialization seam for a built DB (the build-once / serve-many split).
//
// State() exports everything query processing needs that cannot be
// recomputed cheaply: the subjective schema with its linguistic domains
// and marker assignments, the marker summaries, the extraction relation,
// per-review sentiments, the membership model and the configuration.
// FromState() reconstructs a query-ready DB from that state plus the
// independently serialized subsystems (relational layer, embedding model,
// IR indexes, extractor tagger, optional substitution index), rebuilding
// the derived access paths — attrByName, entityIDs, reviewsPerReviewer,
// extIndex, extByReview, reviewsWithAttrCount, positiveReviews, summary
// centroids — by exactly the loops Build uses, so a loaded DB answers
// every query byte-identically to the freshly built one. The query-time
// memo caches start empty; they are memos of pure functions of the
// restored state, so warming them changes latency, never results.

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/embedding"
	"repro/internal/extract"
	"repro/internal/ir"
	"repro/internal/kdtree"
	"repro/internal/relstore"
)

// AttributeState is the exported form of one SubjectiveAttribute,
// including the phrase→marker assignment that is private in the live
// type. Maps are shared with the live attribute, not copied — treat a
// state taken from a live DB as read-only.
type AttributeState struct {
	Name          string
	Categorical   bool
	Markers       []Marker
	DomainPhrases map[string]int
	PhraseMarker  map[string]int
}

// MembershipState is the exported form of the MembershipModel. The LogReg
// pointers are nil when the calibrated heuristics are in use; gob omits
// nil pointer fields, and decoding restores them as nil.
type MembershipState struct {
	MarkerLR       *classify.LogReg
	ScanLR         *classify.LogReg
	MarkerAccuracy float64
	ScanAccuracy   float64
}

// DBState is the exported core-database state: everything owned by this
// package that a snapshot must persist. The relational layer, embedding
// model, IR indexes, extractor tagger and substitution index are
// serialized through their own packages' seams and rejoined in FromState.
type DBState struct {
	Name             string
	Cfg              Config
	Attrs            []AttributeState
	Summaries        map[string]map[string]*MarkerSummary
	Extractions      []Extraction
	ReviewSentiments map[string]float64
	Membership       MembershipState
}

// State exports the database for serialization. The returned state shares
// maps and slices with the live DB; the DB must not be mutated (AddReview,
// RebuildSummaries, ...) until encoding completes.
func (db *DB) State() *DBState {
	st := &DBState{
		Name:             db.Name,
		Cfg:              db.cfg,
		Summaries:        db.Summaries,
		Extractions:      db.Extractions,
		ReviewSentiments: db.ReviewSentiments,
	}
	for _, a := range db.Attrs {
		st.Attrs = append(st.Attrs, AttributeState{
			Name:          a.Name,
			Categorical:   a.Categorical,
			Markers:       a.Markers,
			DomainPhrases: a.DomainPhrases,
			PhraseMarker:  a.phraseMarker,
		})
	}
	if db.Membership != nil {
		st.Membership = MembershipState{
			MarkerLR:       db.Membership.markerLR,
			ScanLR:         db.Membership.scanLR,
			MarkerAccuracy: db.Membership.MarkerAccuracy,
			ScanAccuracy:   db.Membership.ScanAccuracy,
		}
	}
	return st
}

// Components bundles the independently deserialized subsystems FromState
// rejoins with a DBState. SubIndex is optional (nil when the database was
// built without the Appendix B index); everything else is required.
type Components struct {
	Rel         *relstore.DB
	Embed       *embedding.Model
	ReviewIndex *ir.Index
	EntityIndex *ir.Index
	Tagger      *extract.PerceptronTagger
	SubIndex    *kdtree.SubstitutionIndexState
}

// FromState reconstructs a query-ready DB from exported state and its
// subsystem components. It validates referential integrity (marker
// summary shapes, extraction ids, required relations) and rebuilds every
// derived access path with the same loops Build uses, so query results
// are byte-identical to the freshly built database's.
func FromState(st *DBState, c Components) (*DB, error) {
	switch {
	case st == nil:
		return nil, fmt.Errorf("core: nil state")
	case len(st.Attrs) == 0:
		return nil, fmt.Errorf("core: state has no subjective attributes")
	case c.Rel == nil:
		return nil, fmt.Errorf("core: state needs a relational layer")
	case c.Embed == nil:
		return nil, fmt.Errorf("core: state needs an embedding model")
	case c.ReviewIndex == nil || c.EntityIndex == nil:
		return nil, fmt.Errorf("core: state needs both IR indexes")
	case c.Tagger == nil:
		return nil, fmt.Errorf("core: state needs the extractor tagger")
	}
	for _, table := range []string{"Entities", "Reviews", "Extractions"} {
		if _, err := c.Rel.Table(table); err != nil {
			return nil, fmt.Errorf("core: state relational layer: %w", err)
		}
	}

	db := &DB{
		Name:                 st.Name,
		Rel:                  c.Rel,
		attrByName:           map[string]*SubjectiveAttribute{},
		Summaries:            st.Summaries,
		Extractions:          st.Extractions,
		Embed:                c.Embed,
		ReviewIndex:          c.ReviewIndex,
		EntityIndex:          c.EntityIndex,
		ReviewSentiments:     st.ReviewSentiments,
		Extractor:            &extract.Extractor{Tagger: c.Tagger, Pairer: extract.RulePairer{}},
		reviewsPerReviewer:   map[string]int{},
		extIndex:             map[string]map[string][]int{},
		extByReview:          map[string][]int{},
		reviewsWithAttrCount: map[string]int{},
		cfg:                  st.Cfg,
	}
	if db.Summaries == nil {
		db.Summaries = map[string]map[string]*MarkerSummary{}
	}
	if db.ReviewSentiments == nil {
		db.ReviewSentiments = map[string]float64{}
	}
	db.Membership = &MembershipModel{
		markerLR:       st.Membership.MarkerLR,
		scanLR:         st.Membership.ScanLR,
		MarkerAccuracy: st.Membership.MarkerAccuracy,
		ScanAccuracy:   st.Membership.ScanAccuracy,
	}

	// ---- Subjective schema.
	for _, as := range st.Attrs {
		attr := &SubjectiveAttribute{
			Name:          as.Name,
			Categorical:   as.Categorical,
			Markers:       as.Markers,
			DomainPhrases: as.DomainPhrases,
			phraseMarker:  as.PhraseMarker,
		}
		if attr.DomainPhrases == nil {
			attr.DomainPhrases = map[string]int{}
		}
		if attr.phraseMarker == nil {
			attr.phraseMarker = map[string]int{}
		}
		if len(attr.Markers) == 0 {
			return nil, fmt.Errorf("core: state attribute %s has no markers", as.Name)
		}
		for p, m := range attr.phraseMarker {
			if m < 0 || m >= len(attr.Markers) {
				return nil, fmt.Errorf("core: state attribute %s maps %q to marker %d of %d",
					as.Name, p, m, len(attr.Markers))
			}
		}
		if db.attrByName[attr.Name] != nil {
			return nil, fmt.Errorf("core: state has duplicate attribute %s", attr.Name)
		}
		db.Attrs = append(db.Attrs, attr)
		db.attrByName[attr.Name] = attr
	}

	// ---- Marker summaries: validate shapes against the schema, ensure an
	// entry per attribute (AddReview folds into these maps), and finalize
	// the per-marker centroids exactly as Build does.
	for attrName, byEntity := range db.Summaries {
		attr := db.attrByName[attrName]
		if attr == nil {
			return nil, fmt.Errorf("core: state has summaries for unknown attribute %s", attrName)
		}
		for entityID, s := range byEntity {
			if s == nil {
				return nil, fmt.Errorf("core: state summary %s/%s is nil", attrName, entityID)
			}
			k := len(attr.Markers)
			if len(s.Counts) != k || len(s.SentSum) != k || len(s.VecSum) != k || len(s.Provenance) != k {
				return nil, fmt.Errorf("core: state summary %s/%s has %d/%d/%d/%d marker slots, want %d",
					attrName, entityID, len(s.Counts), len(s.SentSum), len(s.VecSum), len(s.Provenance), k)
			}
			s.finalize()
		}
	}
	for _, attr := range db.Attrs {
		if db.Summaries[attr.Name] == nil {
			db.Summaries[attr.Name] = map[string]*MarkerSummary{}
		}
	}

	// ---- Entity ids: the Entities relation's sorted keys, matching
	// Build's sorted input ids.
	entities, err := db.Rel.Table("Entities")
	if err != nil {
		return nil, err
	}
	for _, k := range entities.Keys() {
		id, ok := k.(string)
		if !ok {
			return nil, fmt.Errorf("core: state Entities key %v is not a string", k)
		}
		db.entityIDs = append(db.entityIDs, id)
	}

	// ---- Reviewer counts from the Reviews relation.
	reviews, err := db.Rel.Table("Reviews")
	if err != nil {
		return nil, err
	}
	reviews.Scan(func(r relstore.Row) bool {
		if reviewer, err := reviews.Get(r, "reviewer"); err == nil {
			if name, ok := reviewer.(string); ok {
				db.reviewsPerReviewer[name]++
			}
		}
		return true
	})

	// ---- Extraction access paths, rebuilt in extraction-id order (the
	// order Build materializes them in).
	for i := range db.Extractions {
		ext := &db.Extractions[i]
		if ext.ID != i {
			return nil, fmt.Errorf("core: state extraction %d carries id %d", i, ext.ID)
		}
		attr := db.attrByName[ext.Attribute]
		if attr == nil {
			return nil, fmt.Errorf("core: state extraction %d references unknown attribute %s", i, ext.Attribute)
		}
		if ext.Marker < 0 || ext.Marker >= len(attr.Markers) {
			return nil, fmt.Errorf("core: state extraction %d references marker %d of %d (%s)",
				i, ext.Marker, len(attr.Markers), ext.Attribute)
		}
		if db.extIndex[ext.Attribute] == nil {
			db.extIndex[ext.Attribute] = map[string][]int{}
		}
		db.extIndex[ext.Attribute][ext.EntityID] = append(db.extIndex[ext.Attribute][ext.EntityID], ext.ID)
		db.extByReview[ext.ReviewID] = append(db.extByReview[ext.ReviewID], ext.ID)
	}

	// ---- Co-occurrence statistics (idf(A) numerator/denominator).
	for _, s := range db.ReviewSentiments {
		if s > 0 {
			db.positiveReviews++
		}
	}
	seenAttrReview := map[string]map[string]bool{}
	for i := range db.Extractions {
		ext := &db.Extractions[i]
		if db.ReviewSentiments[ext.ReviewID] <= 0 {
			continue
		}
		if seenAttrReview[ext.Attribute] == nil {
			seenAttrReview[ext.Attribute] = map[string]bool{}
		}
		if !seenAttrReview[ext.Attribute][ext.ReviewID] {
			seenAttrReview[ext.Attribute][ext.ReviewID] = true
			db.reviewsWithAttrCount[ext.Attribute]++
		}
	}

	// ---- Optional Appendix B substitution index, rebuilt against the
	// restored embedding model.
	if c.SubIndex != nil {
		db.SubIndex = kdtree.NewSubstitutionIndexFromState(*c.SubIndex, db.Embed)
	}
	return db, nil
}
