package core

import (
	"math"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/embedding"
)

// MembershipLabel is one labeled tuple (S_i, p_i, y_i) of §3.3: does the
// marker summary of (Entity, Attribute) satisfy the phrase?
type MembershipLabel struct {
	EntityID  string
	Attribute string
	Phrase    string
	Y         bool
}

// MembershipModel turns marker summaries into degrees of truth. It holds
// two scoring paths:
//
//   - the marker path ("10-mkrs" in Table 7): features precomputed in the
//     marker summary, scored by logistic regression whose probability
//     output is the degree of truth;
//   - the scan path ("no-mkrs"): per-query features computed by scanning
//     the raw extracted phrases of the entity, as the ablation baseline.
//
// When no training labels are supplied both paths fall back to calibrated
// heuristics with the same feature semantics.
type MembershipModel struct {
	markerLR *classify.LogReg
	scanLR   *classify.LogReg
	// MarkerAccuracy / ScanAccuracy are the held-out accuracies reported
	// in Table 7 (0 when heuristics are in use).
	MarkerAccuracy float64
	ScanAccuracy   float64
}

// markerFeatureCount and scanFeatureCount fix the feature vector sizes.
const (
	markerFeatureCount = 6
	scanFeatureCount   = 5
)

// newMembershipModel trains LR membership functions when labels are
// available (holding out 20% for the accuracy figures) or installs
// heuristics otherwise.
func newMembershipModel(db *DB, labels []MembershipLabel, rng *rand.Rand) *MembershipModel {
	mm := &MembershipModel{}
	if len(labels) < 20 {
		return mm
	}
	var markerEx, scanEx []classify.Example
	for _, l := range labels {
		attr := db.Attr(l.Attribute)
		if attr == nil {
			continue
		}
		_, mi, _ := db.bestDomainMatch(attr, l.Phrase)
		y := 0
		if l.Y {
			y = 1
		}
		qRep := db.Embed.Rep(l.Phrase)
		markerEx = append(markerEx, classify.Example{
			Features: markerFeatures(db, attr, l.EntityID, mi, qRep),
			Label:    y,
		})
		sf, _ := scanFeatures(db, attr, l.EntityID, qRep, nil)
		scanEx = append(scanEx, classify.Example{Features: sf, Label: y})
	}
	if len(markerEx) < 20 {
		return mm
	}
	// Shuffle and split 80/20.
	perm := rng.Perm(len(markerEx))
	cut := len(markerEx) * 8 / 10
	trainM := make([]classify.Example, 0, cut)
	testM := make([]classify.Example, 0, len(markerEx)-cut)
	trainS := make([]classify.Example, 0, cut)
	testS := make([]classify.Example, 0, len(scanEx)-cut)
	for i, pi := range perm {
		if i < cut {
			trainM = append(trainM, markerEx[pi])
			trainS = append(trainS, scanEx[pi])
		} else {
			testM = append(testM, markerEx[pi])
			testS = append(testS, scanEx[pi])
		}
	}
	cfg := classify.DefaultLogRegConfig()
	if m, err := classify.TrainLogReg(trainM, cfg, rng); err == nil {
		mm.markerLR = m
		mm.MarkerAccuracy = m.Accuracy(testM)
	}
	if m, err := classify.TrainLogReg(trainS, cfg, rng); err == nil {
		mm.scanLR = m
		mm.ScanAccuracy = m.Accuracy(testS)
	}
	return mm
}

// DegreeMarker computes the degree of truth of interpreted predicate
// attr.marker for an entity using only the marker summary (the fast path
// accelerated by precomputation, §3.3).
func (mm *MembershipModel) DegreeMarker(db *DB, entityID string, attr *SubjectiveAttribute, marker int, queryRep embedding.Vector) float64 {
	s := db.Summary(attr.Name, entityID)
	if s == nil || s.Total == 0 {
		return 0 // no evidence at all: definitively false, not model bias
	}
	feats := markerFeatures(db, attr, entityID, marker, queryRep)
	if mm.markerLR != nil {
		return mm.markerLR.Prob(feats)
	}
	return heuristicFromMarkerFeatures(feats)
}

// DegreeScan computes the same degree by scanning the entity's raw
// extracted phrases (the no-marker ablation of Table 7). filter, when
// non-nil, restricts which extractions count (review qualification).
func (mm *MembershipModel) DegreeScan(db *DB, entityID string, attr *SubjectiveAttribute, queryRep embedding.Vector, filter func(*Extraction) bool) float64 {
	feats, n := scanFeatures(db, attr, entityID, queryRep, filter)
	if n == 0 {
		return 0 // nothing survives the filter: definitively false
	}
	if mm.scanLR != nil {
		return mm.scanLR.Prob(feats)
	}
	return heuristicFromScanFeatures(feats)
}

// markerFeatures builds the fast-path feature vector from the summary:
// mass near the target marker, support size, overall sentiment, target
// marker sentiment, sentiment-mass alignment, and centroid similarity.
func markerFeatures(db *DB, attr *SubjectiveAttribute, entityID string, marker int, queryRep embedding.Vector) []float64 {
	s := db.Summary(attr.Name, entityID)
	feats := make([]float64, markerFeatureCount)
	if s == nil || s.Total == 0 || marker < 0 || marker >= len(attr.Markers) {
		return feats
	}
	k := len(attr.Markers)
	// f0: mass at/near the target marker. Linear attributes credit
	// adjacent markers with decayed weight; categorical only exact.
	var mass float64
	for i := 0; i < k; i++ {
		w := 0.0
		if attr.Categorical {
			if i == marker {
				w = 1
			}
		} else {
			d := float64(abs(i - marker))
			w = math.Max(0, 1-d/2.5)
		}
		mass += w * s.Counts[i]
	}
	feats[0] = mass / s.Total
	// f1: support (log-scaled total phrase count).
	feats[1] = math.Log1p(s.Total) / 6
	// f2: overall average sentiment of the entity's phrases for this attr.
	var sentSum float64
	for i := 0; i < k; i++ {
		sentSum += s.SentSum[i]
	}
	feats[2] = sentSum / s.Total
	// f3: target marker's own sentiment (is the user asking for the good
	// end of the scale?).
	feats[3] = attr.Markers[marker].Sentiment
	// f4: sentiment-weighted mass — how much of the mass sits at markers at
	// least as sentiment-close to the target as a small tolerance.
	var aligned float64
	for i := 0; i < k; i++ {
		if math.Abs(attr.Markers[i].Sentiment-attr.Markers[marker].Sentiment) <= 0.25 {
			aligned += s.Counts[i]
		}
	}
	feats[4] = aligned / s.Total
	// f5: cosine between the query phrase and the entity's phrase centroid
	// at the target marker.
	if queryRep != nil {
		feats[5] = embedding.Cosine(queryRep, s.Centroid(marker))
	}
	return feats
}

// scanFeatures builds the slow-path features by walking the entity's raw
// extractions for the attribute: similarity-weighted support, hit
// fraction, sentiment of similar phrases, support size, and overall
// sentiment. This deliberately does per-phrase vector math — the work the
// marker summary precomputes away (Table 7's speedup).
func scanFeatures(db *DB, attr *SubjectiveAttribute, entityID string, queryRep embedding.Vector, filter func(*Extraction) bool) (feats []float64, support int) {
	feats = make([]float64, scanFeatureCount)
	ids := db.extractionsFor(attr.Name, entityID)
	if len(ids) == 0 {
		return feats, 0
	}
	var n, simSum, hits, sentiSimilar, sentiAll float64
	for _, id := range ids {
		ext := &db.Extractions[id]
		if filter != nil && !filter(ext) {
			continue
		}
		n++
		sentiAll += ext.Sentiment
		sim := 0.0
		if queryRep != nil {
			sim = embedding.Cosine(queryRep, db.Embed.Rep(ext.Phrase))
		}
		if sim > 0 {
			simSum += sim
		}
		if sim >= 0.55 {
			hits++
			sentiSimilar += ext.Sentiment
		}
	}
	if n == 0 {
		return feats, 0
	}
	feats[0] = simSum / n
	feats[1] = hits / n
	if hits > 0 {
		feats[2] = sentiSimilar / hits
	}
	feats[3] = math.Log1p(n) / 6
	feats[4] = sentiAll / n
	return feats, int(n)
}

// heuristicFromMarkerFeatures is the untrained fast-path membership: mass
// near the marker, shrunk toward 0 for thin support, nudged by sentiment
// alignment. Matches the paper's example calibration (a summary dominated
// by the queried marker ≈ 0.95; an evenly split one ≈ 0.2–0.5).
func heuristicFromMarkerFeatures(f []float64) float64 {
	mass, support, align := f[0], f[1], f[4]
	score := 0.75*mass + 0.25*align
	conf := 1 - math.Exp(-support*4)
	return clamp01(score * conf)
}

// heuristicFromScanFeatures mirrors the scan-path heuristic.
func heuristicFromScanFeatures(f []float64) float64 {
	hitFrac, senti, support := f[1], f[2], f[3]
	score := 0.7*hitFrac + 0.3*clamp01(0.5+senti/2)
	if hitFrac == 0 {
		score = 0.2 * clamp01(0.5+f[4]/2)
	}
	conf := 1 - math.Exp(-support*4)
	return clamp01(score * conf)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
