package core_test

// Unit tests of the sharding seam: deterministic partitioning and the
// per-entity-score identity of a derived shard database. The end-to-end
// sharded-vs-monolithic byte-identity contract (through snapshots, HTTP
// and the router merge) lives in internal/router/e2e_test.go.

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestPartitionEntitiesErrors(t *testing.T) {
	_, db := testDB(t)
	if _, err := db.PartitionEntities(0); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := db.PartitionEntities(-3); err == nil {
		t.Error("negative shards should fail")
	}
	if _, err := db.PartitionEntities(len(db.EntityIDs()) + 1); err == nil {
		t.Error("more shards than entities should fail")
	}
}

func TestPartitionEntitiesCoversContiguously(t *testing.T) {
	_, db := testDB(t)
	all := db.EntityIDs()
	for _, n := range []int{1, 2, 4, 7} {
		parts, err := db.PartitionEntities(n)
		if err != nil {
			t.Fatalf("partition %d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("partition %d returned %d parts", n, len(parts))
		}
		var joined []string
		for i, p := range parts {
			if len(p) == 0 {
				t.Fatalf("partition %d: shard %d is empty", n, i)
			}
			joined = append(joined, p...)
		}
		if len(joined) != len(all) {
			t.Fatalf("partition %d covers %d of %d entities", n, len(joined), len(all))
		}
		for i, id := range joined {
			if id != all[i] {
				t.Fatalf("partition %d: position %d has %s, want %s (not contiguous/ordered)", n, i, id, all[i])
			}
		}
		// Determinism: a second partition is identical.
		again, _ := db.PartitionEntities(n)
		for i := range parts {
			if len(parts[i]) != len(again[i]) || parts[i][0] != again[i][0] {
				t.Fatalf("partition %d is not deterministic at shard %d", n, i)
			}
		}
	}
}

func TestShardDBScoresAreMonolithScores(t *testing.T) {
	d, db := testDB(t)
	parts, err := db.PartitionEntities(3)
	if err != nil {
		t.Fatal(err)
	}
	// A couple of schema-targeting predicates exercising the marker path
	// and (via pairing) multi-term scoring.
	var preds []string
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindMarker || p.Kind == corpus.KindParaphrase {
			preds = append(preds, p.Text)
			if len(preds) == 4 {
				break
			}
		}
	}
	if len(preds) < 2 {
		t.Skip("predicate bank too small")
	}
	opts := core.DefaultQueryOptions()
	opts.TopK = 0 // rank everything: compare full score maps
	monolith := map[string]map[string]float64{}
	for _, p := range preds {
		res, err := db.RankPredicates([]string{p}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		monolith[p] = map[string]float64{}
		for _, row := range res.Rows {
			monolith[p][row.EntityID] = row.Score
		}
	}

	for si, ids := range parts {
		keep := map[string]bool{}
		for _, id := range ids {
			keep[id] = true
		}
		shard, err := db.ShardDB(func(id string) bool { return keep[id] })
		if err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		if got, want := len(shard.EntityIDs()), len(ids); got != want {
			t.Fatalf("shard %d serves %d entities, want %d", si, got, want)
		}
		for _, p := range preds {
			// Interpretation state is replicated: identical rendering.
			if got, want := shard.Interpret(p).String(), db.Interpret(p).String(); got != want {
				t.Fatalf("shard %d interprets %q as %s, monolith %s", si, p, got, want)
			}
			res, err := shard.RankPredicates([]string{p}, nil, opts)
			if err != nil {
				t.Fatalf("shard %d: %v", si, err)
			}
			for _, row := range res.Rows {
				if !keep[row.EntityID] {
					t.Fatalf("shard %d returned foreign entity %s", si, row.EntityID)
				}
				want, ok := monolith[p][row.EntityID]
				if !ok {
					t.Fatalf("shard %d returned %s which the monolith filtered out", si, row.EntityID)
				}
				if row.Score != want {
					t.Fatalf("shard %d scores %s at %s, monolith %s (bit-exactness broken)",
						si, row.EntityID,
						strconv.FormatFloat(row.Score, 'x', -1, 64),
						strconv.FormatFloat(want, 'x', -1, 64))
				}
			}
		}
	}
}

func TestShardDBRejectsBadInput(t *testing.T) {
	_, db := testDB(t)
	if _, err := db.ShardDB(nil); err == nil {
		t.Error("nil keep predicate should fail")
	}
}

// TestMergeShardsRestoresMonolith is the rebalancing seam's round trip:
// partition → merge must reproduce the monolith's answers bit for bit,
// and a re-partition of the merged database must equal a direct
// partition of the original.
func TestMergeShardsRestoresMonolith(t *testing.T) {
	d, db := testDB(t)
	shards, _, err := db.Shards(3)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := core.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.EntityIDs(), db.EntityIDs(); len(got) != len(want) {
		t.Fatalf("merged serves %d entities, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("merged entity %d is %s, want %s", i, got[i], want[i])
			}
		}
	}

	var preds []string
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindMarker || p.Kind == corpus.KindParaphrase {
			preds = append(preds, p.Text)
			if len(preds) == 4 {
				break
			}
		}
	}
	opts := core.DefaultQueryOptions()
	opts.TopK = 0
	for _, p := range preds {
		if got, want := merged.Interpret(p).String(), db.Interpret(p).String(); got != want {
			t.Fatalf("merged interprets %q as %s, monolith %s", p, got, want)
		}
		mres, err := merged.RankPredicates([]string{p}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := db.RankPredicates([]string{p}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(mres.Rows) != len(dres.Rows) {
			t.Fatalf("%q: merged ranks %d rows, monolith %d", p, len(mres.Rows), len(dres.Rows))
		}
		for i := range dres.Rows {
			if mres.Rows[i].EntityID != dres.Rows[i].EntityID || mres.Rows[i].Score != dres.Rows[i].Score {
				t.Fatalf("%q row %d: merged %s=%s, monolith %s=%s (bit-exactness broken)", p, i,
					mres.Rows[i].EntityID, strconv.FormatFloat(mres.Rows[i].Score, 'x', -1, 64),
					dres.Rows[i].EntityID, strconv.FormatFloat(dres.Rows[i].Score, 'x', -1, 64))
			}
		}
	}

	// Re-partitioning the merged database matches partitioning the
	// original — the core property behind N→M rebalancing.
	mparts, err := merged.PartitionEntities(2)
	if err != nil {
		t.Fatal(err)
	}
	dparts, err := db.PartitionEntities(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dparts {
		if len(mparts[i]) != len(dparts[i]) || mparts[i][0] != dparts[i][0] {
			t.Fatalf("re-partition shard %d diverges", i)
		}
	}
}

func TestMergeShardsRejectsDrift(t *testing.T) {
	_, db := testDB(t)
	shards, _, err := db.Shards(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.MergeShards(nil); err == nil {
		t.Error("empty merge should fail")
	}
	// Out-of-order shards are a misconfigured fleet.
	if _, err := core.MergeShards([]*core.DB{shards[1], shards[0]}); err == nil {
		t.Error("misordered shards should fail")
	}
	// The drifted-replica gate (a shard that missed replicated writes
	// refuses to merge) is exercised with isolated clones in
	// internal/fleet's tests — mutating a ShardDB here would write through
	// its shared global state into the package fixture.
}
