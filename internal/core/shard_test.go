package core_test

// Unit tests of the sharding seam: deterministic partitioning and the
// per-entity-score identity of a derived shard database. The end-to-end
// sharded-vs-monolithic byte-identity contract (through snapshots, HTTP
// and the router merge) lives in internal/router/e2e_test.go.

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

func TestPartitionEntitiesErrors(t *testing.T) {
	_, db := testDB(t)
	if _, err := db.PartitionEntities(0); err == nil {
		t.Error("0 shards should fail")
	}
	if _, err := db.PartitionEntities(-3); err == nil {
		t.Error("negative shards should fail")
	}
	if _, err := db.PartitionEntities(len(db.EntityIDs()) + 1); err == nil {
		t.Error("more shards than entities should fail")
	}
}

func TestPartitionEntitiesCoversContiguously(t *testing.T) {
	_, db := testDB(t)
	all := db.EntityIDs()
	for _, n := range []int{1, 2, 4, 7} {
		parts, err := db.PartitionEntities(n)
		if err != nil {
			t.Fatalf("partition %d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("partition %d returned %d parts", n, len(parts))
		}
		var joined []string
		for i, p := range parts {
			if len(p) == 0 {
				t.Fatalf("partition %d: shard %d is empty", n, i)
			}
			joined = append(joined, p...)
		}
		if len(joined) != len(all) {
			t.Fatalf("partition %d covers %d of %d entities", n, len(joined), len(all))
		}
		for i, id := range joined {
			if id != all[i] {
				t.Fatalf("partition %d: position %d has %s, want %s (not contiguous/ordered)", n, i, id, all[i])
			}
		}
		// Determinism: a second partition is identical.
		again, _ := db.PartitionEntities(n)
		for i := range parts {
			if len(parts[i]) != len(again[i]) || parts[i][0] != again[i][0] {
				t.Fatalf("partition %d is not deterministic at shard %d", n, i)
			}
		}
	}
}

func TestShardDBScoresAreMonolithScores(t *testing.T) {
	d, db := testDB(t)
	parts, err := db.PartitionEntities(3)
	if err != nil {
		t.Fatal(err)
	}
	// A couple of schema-targeting predicates exercising the marker path
	// and (via pairing) multi-term scoring.
	var preds []string
	for _, p := range d.Predicates {
		if p.Kind == corpus.KindMarker || p.Kind == corpus.KindParaphrase {
			preds = append(preds, p.Text)
			if len(preds) == 4 {
				break
			}
		}
	}
	if len(preds) < 2 {
		t.Skip("predicate bank too small")
	}
	opts := core.DefaultQueryOptions()
	opts.TopK = 0 // rank everything: compare full score maps
	monolith := map[string]map[string]float64{}
	for _, p := range preds {
		res, err := db.RankPredicates([]string{p}, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		monolith[p] = map[string]float64{}
		for _, row := range res.Rows {
			monolith[p][row.EntityID] = row.Score
		}
	}

	for si, ids := range parts {
		keep := map[string]bool{}
		for _, id := range ids {
			keep[id] = true
		}
		shard, err := db.ShardDB(func(id string) bool { return keep[id] })
		if err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		if got, want := len(shard.EntityIDs()), len(ids); got != want {
			t.Fatalf("shard %d serves %d entities, want %d", si, got, want)
		}
		for _, p := range preds {
			// Interpretation state is replicated: identical rendering.
			if got, want := shard.Interpret(p).String(), db.Interpret(p).String(); got != want {
				t.Fatalf("shard %d interprets %q as %s, monolith %s", si, p, got, want)
			}
			res, err := shard.RankPredicates([]string{p}, nil, opts)
			if err != nil {
				t.Fatalf("shard %d: %v", si, err)
			}
			for _, row := range res.Rows {
				if !keep[row.EntityID] {
					t.Fatalf("shard %d returned foreign entity %s", si, row.EntityID)
				}
				want, ok := monolith[p][row.EntityID]
				if !ok {
					t.Fatalf("shard %d returned %s which the monolith filtered out", si, row.EntityID)
				}
				if row.Score != want {
					t.Fatalf("shard %d scores %s at %s, monolith %s (bit-exactness broken)",
						si, row.EntityID,
						strconv.FormatFloat(row.Score, 'x', -1, 64),
						strconv.FormatFloat(want, 'x', -1, 64))
				}
			}
		}
	}
}

func TestShardDBRejectsBadInput(t *testing.T) {
	_, db := testDB(t)
	if _, err := db.ShardDB(nil); err == nil {
		t.Error("nil keep predicate should fail")
	}
}
