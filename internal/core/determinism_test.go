package core_test

// Determinism of the parallel build pipeline: for a fixed Config.Seed the
// built database must be byte-identical for every BuildWorkers setting —
// markers, linguistic domains, interpretations and top-k rankings all
// included. The fingerprint below serializes exactly those observables
// with exact float bits, so any scheduling-dependent divergence fails the
// byte comparison.

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
)

// tinyCorpus regenerates the small hotels corpus from scratch (no state
// shared between calls).
func tinyCorpus() *corpus.Dataset {
	cfg := corpus.SmallConfig()
	return corpus.GenerateHotels(cfg)
}

// buildTinyDB builds a private small hotel DB with the given build worker
// count.
func buildTinyDB(t *testing.T, workers int) *core.DB {
	t.Helper()
	c := core.DefaultConfig()
	c.MarkersPerAttr = 6
	c.BuildWorkers = workers
	db, err := harness.BuildDB(tinyCorpus(), c, 400, 300)
	if err != nil {
		t.Fatalf("build (workers=%d): %v", workers, err)
	}
	return db
}

// hexf renders a float with exact bits.
func hexf(x float64) string { return strconv.FormatFloat(x, 'x', -1, 64) }

// fingerprint serializes a database's query-visible state: the schema's
// markers (names, sentiments, centroid bits), the linguistic domains, the
// interpretation of every bank predicate, and TA top-k rankings for a few
// conjunctions.
func fingerprint(d *corpus.Dataset, db *core.DB) string {
	var b strings.Builder
	for _, a := range db.Attrs {
		fmt.Fprintf(&b, "attr %s cat=%v domain=%d\n", a.Name, a.Categorical, len(a.DomainPhrases))
		for i, m := range a.Markers {
			fmt.Fprintf(&b, "  marker %d %q senti=%s centroid=", i, m.Name, hexf(m.Sentiment))
			for _, v := range m.Centroid {
				b.WriteString(hexf(v))
				b.WriteByte(',')
			}
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "extractions %d\n", len(db.Extractions))
	for _, p := range d.Predicates {
		in := db.Interpret(p.Text)
		fmt.Fprintf(&b, "interp %q method=%s terms=%v disj=%v sim=%s\n",
			p.Text, in.Method, in.Terms, in.Disjunction, hexf(in.Similarity))
	}
	for _, set := range [][]string{
		{"has really clean rooms"},
		{"has really clean rooms", "has friendly staff"},
	} {
		rows, _, err := db.TopKThreshold(set, 10)
		if err != nil {
			fmt.Fprintf(&b, "topk %v error=%v\n", set, err)
			continue
		}
		fmt.Fprintf(&b, "topk %v:", set)
		for _, r := range rows {
			fmt.Fprintf(&b, " %s=%s", r.EntityID, hexf(r.Score))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelBuildDeterminism builds the hotels corpus twice with the
// same seed and parallel workers on; the two databases must be
// byte-identical in every query-visible respect.
func TestParallelBuildDeterminism(t *testing.T) {
	d1, d2 := tinyCorpus(), tinyCorpus()
	fp1 := fingerprint(d1, buildTinyDB(t, 8))
	fp2 := fingerprint(d2, buildTinyDB(t, 8))
	if fp1 != fp2 {
		t.Fatalf("two fixed-seed parallel builds diverged:\n%s", firstDiff(fp1, fp2))
	}
}

// TestSequentialParallelBuildEquivalence builds once sequentially and
// once with a worker pool; the results must be byte-identical, proving
// parallelism is purely a scheduling concern.
func TestSequentialParallelBuildEquivalence(t *testing.T) {
	d1, d2 := tinyCorpus(), tinyCorpus()
	seq := fingerprint(d1, buildTinyDB(t, 1))
	par := fingerprint(d2, buildTinyDB(t, 8))
	if seq != par {
		t.Fatalf("sequential and parallel builds diverged:\n%s", firstDiff(seq, par))
	}
}

// firstDiff returns the first differing line of two multi-line strings.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(al), len(bl))
}
