// Package core implements OpineDB, the subjective database system of the
// paper: the data model (linguistic domains, markers, marker summaries),
// the database construction pipeline (§4), the subjective query
// interpreter (§3.2), membership functions (§3.3), and fuzzy-ranked query
// execution (§3.1).
//
// Concurrency: a built DB is safe for unlimited concurrent readers with
// no external locking — Query, QueryWithOptions, RankPredicates, Execute,
// TopKThreshold, Interpret, InterpretW2VOnly, InterpretCooccurOnly,
// Explain, ProvenanceOf and every other read-only accessor may be called
// from any number of goroutines simultaneously. Query processing memoizes
// deterministic derived values (interpretations, phrase representations,
// TA degree lists) in sharded RWMutex caches (cache.go), so a warm cache
// costs one shard-local read lock per lookup and results are identical to
// a sequential run. Mutations — Build-time helpers aside, ApplyReview
// (and its AddReview alias), RebuildSummaries, RestoreSummaries,
// SetFuzzyVariant and SetW2VThreshold — are NOT safe concurrently with
// readers or each other; callers that mutate a live database must provide
// their own writer-exclusion (internal/server holds a stop-the-world
// RWMutex around POST /reviews for exactly this reason). The relational
// layer underneath is independently goroutine-safe.
//
// Relations: queries reference a single relation (§2 assumes one
// select-from-where block); the engine binds any FROM name to the
// Entities relation, so `FROM Hotels` and `FROM Entities` are equivalent.
package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/embedding"
	"repro/internal/extract"
	"repro/internal/fuzzy"
	"repro/internal/ir"
	"repro/internal/kdtree"
	"repro/internal/relstore"
)

// Marker is one designer-visible point of a subjective attribute's scale
// (§2): a representative phrase of the linguistic domain, its embedding
// centroid and average sentiment.
type Marker struct {
	// Name is the marker's phrase ("very clean", "luxurious").
	Name string
	// Sentiment is the average sentiment of phrases assigned to the marker.
	Sentiment float64
	// Centroid is the mean embedding of assigned phrases.
	Centroid embedding.Vector
}

// SubjectiveAttribute is one subjective attribute of the schema with its
// linguistic domain and marker set.
type SubjectiveAttribute struct {
	Name string
	// Categorical is true for non-linear marker summaries (§2).
	Categorical bool
	// Markers are ordered worst→best for linear attributes (by sentiment);
	// arbitrary but fixed for categorical ones.
	Markers []Marker
	// DomainPhrases is the linguistic domain: every distinct opinion
	// phrase assigned to the attribute, with its observed count.
	DomainPhrases map[string]int
	// phraseMarker caches each domain phrase's marker assignment.
	phraseMarker map[string]int
	// markerIdx lazily indexes marker name → position for MarkerIndex;
	// built once under markerIdxOnce so concurrent readers share it
	// without locking. Markers are fixed after construction.
	markerIdxOnce sync.Once
	markerIdx     map[string]int
}

// MarkerOf returns the marker index a domain phrase maps to and whether
// the phrase is in the linguistic domain.
func (a *SubjectiveAttribute) MarkerOf(phrase string) (int, bool) {
	m, ok := a.phraseMarker[phrase]
	return m, ok
}

// MarkerIndex returns the index of the named marker, or -1. The lookup
// map is built lazily on first call (marker sets are fixed after
// construction); duplicate names resolve to the lowest index, matching
// the linear scan this replaced.
func (a *SubjectiveAttribute) MarkerIndex(name string) int {
	a.markerIdxOnce.Do(func() {
		idx := make(map[string]int, len(a.Markers))
		for i := range a.Markers {
			if _, dup := idx[a.Markers[i].Name]; !dup {
				idx[a.Markers[i].Name] = i
			}
		}
		a.markerIdx = idx
	})
	if i, ok := a.markerIdx[name]; ok {
		return i
	}
	return -1
}

// MarkerSummary is the aggregate view of one (entity, attribute) pair
// (§2): a histogram over markers plus the precomputed features query
// processing needs (per-marker sentiment totals and embedding centroids),
// and provenance links back to the contributing extractions.
type MarkerSummary struct {
	// Counts[i] is the number of phrases mapped to marker i.
	Counts []float64
	// SentSum[i] is the summed sentiment of phrases mapped to marker i.
	SentSum []float64
	// VecSum[i] is the summed embedding of phrases mapped to marker i.
	VecSum []embedding.Vector
	// Total is the total number of contributing phrases.
	Total float64
	// Provenance[i] lists extraction ids contributing to marker i.
	Provenance [][]int
	// centroids are the precomputed per-marker mean vectors, finalized
	// after construction so query processing avoids per-call allocation —
	// the "features precomputed for each marker" of §5.4.2.
	centroids []embedding.Vector
}

// finalize precomputes the per-marker centroids.
func (s *MarkerSummary) finalize() {
	s.centroids = make([]embedding.Vector, len(s.VecSum))
	for i := range s.VecSum {
		c := s.VecSum[i].Clone()
		if s.Counts[i] > 0 {
			c.Scale(1 / s.Counts[i])
		}
		s.centroids[i] = c
	}
}

// newMarkerSummary allocates an empty summary for k markers and dim-sized
// vectors.
func newMarkerSummary(k, dim int) *MarkerSummary {
	s := &MarkerSummary{
		Counts:     make([]float64, k),
		SentSum:    make([]float64, k),
		VecSum:     make([]embedding.Vector, k),
		Provenance: make([][]int, k),
	}
	for i := range s.VecSum {
		s.VecSum[i] = make(embedding.Vector, dim)
	}
	return s
}

// add records one extraction into the summary (incremental maintenance,
// §4.2.2).
func (s *MarkerSummary) add(marker int, sentiment float64, vec embedding.Vector, extractionID int) {
	s.Counts[marker]++
	s.SentSum[marker] += sentiment
	if vec != nil {
		s.VecSum[marker].Add(vec)
	}
	s.Total++
	s.Provenance[marker] = append(s.Provenance[marker], extractionID)
}

// AvgSentiment returns the mean sentiment of marker i's phrases (0 when
// empty).
func (s *MarkerSummary) AvgSentiment(i int) float64 {
	if s.Counts[i] == 0 {
		return 0
	}
	return s.SentSum[i] / s.Counts[i]
}

// Centroid returns the mean embedding of marker i's phrases (zero vector
// when empty). After construction the centroid is precomputed; before
// finalization it is computed on the fly. The caller must not modify the
// returned vector.
func (s *MarkerSummary) Centroid(i int) embedding.Vector {
	if s.centroids != nil {
		return s.centroids[i]
	}
	out := s.VecSum[i].Clone()
	if s.Counts[i] > 0 {
		out.Scale(1 / s.Counts[i])
	}
	return out
}

// Extraction is one (aspect, opinion) pair extracted from a review and
// assigned to a subjective attribute; the base data of the subjective
// database with full provenance.
type Extraction struct {
	ID        int
	EntityID  string
	ReviewID  string
	Reviewer  string
	Day       int
	Attribute string
	Aspect    string
	// Phrase is the linguistic variation: the aspect+opinion concatenation
	// of §4.2.1 ("room very clean"), or the bare opinion term for direct
	// opinions with no aspect.
	Phrase    string
	Marker    int // marker index within the attribute
	Sentiment float64
}

// EntityData is the caller-supplied objective record of one entity.
type EntityData struct {
	ID string
	// Objective maps objective attribute name → value (string, int64,
	// float64 or bool), stored in the Entities relation.
	Objective map[string]interface{}
}

// ReviewData is one caller-supplied raw review.
type ReviewData struct {
	ID       string
	EntityID string
	Reviewer string
	Day      int
	Text     string
}

// DB is a built subjective database: the paper's three schema layers —
// (1) the user-visible schema of objective + subjective attributes,
// (2) the raw review data, (3) the extraction relation — plus the
// auxiliary models query processing needs.
type DB struct {
	Name string

	// Rel holds the relational layer: Entities, Reviews, Extractions.
	Rel *relstore.DB

	// Attrs are the subjective attributes (the user-visible schema).
	Attrs      []*SubjectiveAttribute
	attrByName map[string]*SubjectiveAttribute

	// Summaries[attr][entity] is the marker summary view.
	Summaries map[string]map[string]*MarkerSummary

	// Extractions is the in-memory extraction relation (also mirrored in
	// Rel for relational access).
	Extractions []Extraction

	// Embed is the word2vec model trained on the review corpus.
	Embed *embedding.Model

	// ReviewIndex is the BM25 index over individual reviews (the
	// co-occurrence interpreter's search space).
	ReviewIndex *ir.Index
	// EntityIndex is the BM25 index over per-entity concatenated review
	// documents (the text-retrieval fallback's search space).
	EntityIndex *ir.Index
	// ReviewSentiments maps review id → document sentiment.
	ReviewSentiments map[string]float64

	// Extractor is the trained opinion extractor (kept for incremental
	// updates and inspection).
	Extractor *extract.Extractor

	// Membership scores marker summaries against interpreted predicates.
	Membership *MembershipModel

	// SubIndex is the optional Appendix B substitution index accelerating
	// the w2v interpreter; nil when disabled.
	SubIndex *kdtree.SubstitutionIndex

	// entityIDs is the sorted list of entity ids.
	entityIDs []string

	// reviewsPerReviewer supports review-qualification predicates.
	reviewsPerReviewer map[string]int

	// extIndex[attr][entity] lists extraction ids — the access path of the
	// no-marker scan membership and of review qualification.
	extIndex map[string]map[string][]int
	// extByReview[reviewID] lists extraction ids, used by the
	// co-occurrence interpreter.
	extByReview map[string][]int
	// reviewsWithAttrCount[attr] counts positive-sentiment reviews
	// containing at least one extraction of the attribute (the idf(A)
	// denominator of §3.2). Positive-only because the co-occurrence miner
	// searches positive reviews; comparing against the same population
	// removes the systematic bias of positive reviews mentioning
	// positive-skewed aspects more.
	reviewsWithAttrCount map[string]int
	// positiveReviews counts reviews with positive sentiment.
	positiveReviews int

	// Query-time caches. Interpretations are deterministic for a built
	// database, so they are computed once per predicate text ("these
	// degrees of truth, once computed, can also be indexed", §3.3). All
	// five are sharded concurrent caches (cache.go) so readers never need
	// external locking; degreeLists is keyed by AttrMarker.String().
	domainLists   shardedCache[[]string]
	domainMatches shardedCache[domainMatch]
	phraseReps    shardedCache[embedding.Vector]
	phraseSentis  shardedCache[float64]
	interpCache   shardedCache[Interpretation]
	degreeLists   shardedCache[[]entityDegree]

	cfg Config
}

// Attr returns the named subjective attribute, or nil.
func (db *DB) Attr(name string) *SubjectiveAttribute { return db.attrByName[name] }

// EntityIDs returns all entity ids in sorted order. The caller must not
// modify the returned slice.
func (db *DB) EntityIDs() []string { return db.entityIDs }

// ObjectiveValue returns the objective attribute value of an entity from
// the Entities relation.
func (db *DB) ObjectiveValue(entityID, column string) (interface{}, error) {
	t, err := db.Rel.Table("Entities")
	if err != nil {
		return nil, err
	}
	rows := t.ByKey(entityID)
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no entity %q", entityID)
	}
	return t.Get(rows[0], column)
}

// Summary returns the marker summary for (attribute, entity), or nil.
func (db *DB) Summary(attr, entityID string) *MarkerSummary {
	m, ok := db.Summaries[attr]
	if !ok {
		return nil
	}
	return m[entityID]
}

// ReviewerReviewCount returns how many reviews the reviewer wrote in this
// database (supports "reviewers with at least N reviews" qualification).
func (db *DB) ReviewerReviewCount(reviewer string) int {
	return db.reviewsPerReviewer[reviewer]
}

// ProvenanceOf resolves the extraction ids supporting marker m of
// (attr, entity) into extraction records, sorted by review id; this backs
// the paper's "any result returned can be supported with evidence from
// the reviews" claim.
func (db *DB) ProvenanceOf(attr, entityID string, marker int) []Extraction {
	s := db.Summary(attr, entityID)
	if s == nil || marker < 0 || marker >= len(s.Provenance) {
		return nil
	}
	out := make([]Extraction, 0, len(s.Provenance[marker]))
	for _, id := range s.Provenance[marker] {
		out = append(out, db.Extractions[id])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ReviewID < out[j].ReviewID })
	return out
}

// AttrMarker names one interpreted predicate target: attribute A and
// marker index m, the A.m of §3.2.
type AttrMarker struct {
	Attr   string
	Marker int
}

// String renders A.m as the paper writes it.
func (am AttrMarker) String() string {
	return am.Attr + "." + fmt.Sprint(am.Marker)
}

// fuzzyVariantFor maps config to the fuzzy variant.
func (db *DB) fuzzyVariant() fuzzy.Variant { return db.cfg.FuzzyVariant }

// Config returns a copy of the database's configuration.
func (db *DB) Config() Config { return db.cfg }

// SetFuzzyVariant switches the t-norm used to combine degrees of truth —
// the §3.1 design choice (product vs Gödel), exposed for the ablation
// benchmarks. Affects subsequent queries only.
func (db *DB) SetFuzzyVariant(v fuzzy.Variant) { db.cfg.FuzzyVariant = v }

// SetW2VThreshold overrides θ1 (Figure 5) for interpreter ablations.
// The interpretation cache is invalidated.
func (db *DB) SetW2VThreshold(t float64) {
	db.cfg.W2VThreshold = t
	db.interpCache.reset()
}
