package core_test

import (
	"testing"
)

// TestDebugInterpretations prints interpreter diagnostics when run with
// -v; it never fails. Kept as executable documentation of the fixture's
// interpreter behaviour.
func TestDebugInterpretations(t *testing.T) {
	_, db := testDB(t)
	for _, pred := range []string{
		"has really clean rooms",
		"spotless rooms",
		"has firm beds",
		"has luxurious bathrooms",
		"is a romantic getaway",
		"kid friendly hotel",
		"good for motorcyclists",
		"has great towel art",
		"quiet room",
	} {
		in := db.Interpret(pred)
		t.Logf("%-28s → method=%-8s sim=%.3f terms=%s matched=%q",
			pred, in.Method, in.Similarity, in.String(), in.MatchedPhrase)
		w := db.InterpretW2VOnly(pred)
		t.Logf("%-28s   [w2v-only] sim=%.3f terms=%s matched=%q",
			"", w.Similarity, w.String(), w.MatchedPhrase)
		c := db.InterpretCooccurOnly(pred)
		t.Logf("%-28s   [cooccur ] conf=%.3f terms=%s", "", c.Similarity, c.String())
	}
	for _, pred := range []string{"good for motorcyclists", "is a romantic getaway"} {
		t.Logf("tally for %q:\n%s", pred, db.DebugCooccurTally(pred))
	}
}
