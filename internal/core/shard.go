package core

// Horizontal sharding seam. A shard of a built database serves a
// contiguous range of the (sorted) entity id space while answering every
// query byte-identically to the monolithic database — the contract the
// scatter-gather router (internal/router) depends on.
//
// What identity requires: a predicate's interpretation and an entity's
// degree of truth are functions of corpus-global model state — the
// subjective schema, the embedding model, both BM25 indexes (the entity
// index's idf enters fallback scores), the review-sentiment and
// co-occurrence statistics, the extraction relation and the membership
// model. That state is therefore REPLICATED into every shard. What is
// PARTITIONED is the per-entity serving state the engine iterates over:
// the Entities relation and, through it, entityIDs, plus the marker
// summaries — so a shard only scores, ranks and caches degree lists for
// its own entity range. Per-entity scores never change; only which
// entities a process answers for does.

import (
	"fmt"

	"repro/internal/extract"
	"repro/internal/kdtree"
	"repro/internal/relstore"
)

// PartitionEntities splits the database's sorted entity ids into n
// contiguous, near-equal ranges (shard i gets ids[i*N/n : (i+1)*N/n]).
// The split is a pure function of the sorted id list, so every build of
// the same corpus partitions identically. It errors when n exceeds the
// entity count (an empty shard serves nothing and signals a misconfigured
// fleet).
func (db *DB) PartitionEntities(n int) ([][]string, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: partition into %d shards", n)
	}
	total := len(db.entityIDs)
	if n > total {
		return nil, fmt.Errorf("core: %d shards over %d entities leaves empty shards", n, total)
	}
	out := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, db.entityIDs[i*total/n:(i+1)*total/n])
	}
	return out, nil
}

// Shards partitions the database into n shard databases over contiguous
// entity ranges — PartitionEntities + ShardDB in one step, so every
// caller (builder, in-process router, experiments) derives fleets the
// same way. It returns the shard databases and the entity-id ranges they
// own, both ordered by shard index.
func (db *DB) Shards(n int) ([]*DB, [][]string, error) {
	parts, err := db.PartitionEntities(n)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*DB, 0, n)
	for i, ids := range parts {
		keep := make(map[string]bool, len(ids))
		for _, id := range ids {
			keep[id] = true
		}
		shard, err := db.ShardDB(func(id string) bool { return keep[id] })
		if err != nil {
			return nil, nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		out = append(out, shard)
	}
	return out, parts, nil
}

// ShardDB derives a new query-ready database restricted to the entities
// where keep(id) is true. Global model state (schema, embedding, IR
// indexes, extractor, membership model, extraction relation, review
// statistics, substitution index) is shared or rebuilt identically, so
// the shard's answers for its entities carry the exact float bits the
// monolith produces; only the Entities relation and the marker summaries
// are restricted. The receiver must not be mutated while ShardDB runs,
// and the shard shares read-only structures with it afterwards — treat
// both as frozen once serving starts (the same rule as snapshot.Write).
func (db *DB) ShardDB(keep func(entityID string) bool) (*DB, error) {
	if keep == nil {
		return nil, fmt.Errorf("core: ShardDB needs a keep predicate")
	}
	tagger, ok := db.Extractor.Tagger.(*extract.PerceptronTagger)
	if !ok {
		return nil, fmt.Errorf("core: ShardDB supports the perceptron tagger, not %T", db.Extractor.Tagger)
	}

	st := db.State()
	shardSt := &DBState{
		Name:             st.Name,
		Cfg:              st.Cfg,
		Attrs:            st.Attrs,
		Extractions:      st.Extractions,
		ReviewSentiments: st.ReviewSentiments,
		Membership:       st.Membership,
		Summaries:        make(map[string]map[string]*MarkerSummary, len(st.Summaries)),
	}
	for attr, byEntity := range st.Summaries {
		kept := make(map[string]*MarkerSummary)
		for id, s := range byEntity {
			if keep(id) {
				kept[id] = s
			}
		}
		shardSt.Summaries[attr] = kept
	}

	rel, err := restrictEntities(db.Rel, keep)
	if err != nil {
		return nil, err
	}

	var subState *kdtree.SubstitutionIndexState
	if db.SubIndex != nil {
		s := db.SubIndex.State()
		subState = &s
	}
	shard, err := FromState(shardSt, Components{
		Rel:         rel,
		Embed:       db.Embed,
		ReviewIndex: db.ReviewIndex,
		EntityIndex: db.EntityIndex,
		Tagger:      tagger,
		SubIndex:    subState,
	})
	if err != nil {
		return nil, fmt.Errorf("core: shard reconstruction: %w", err)
	}
	return shard, nil
}

// MergeShards is ShardDB's inverse: it reconstructs the monolith-
// equivalent database from a complete fleet of shard databases ordered
// by shard index. Corpus-global model state is REPLICATED across shards
// and byte-identical on every healthy replica (the sharding contract),
// so the merge takes it from shard 0 after verifying the fleet has not
// drifted (equal extraction and review counts everywhere — a shard that
// missed replicated writes fails here and needs an anti-entropy repair
// pass first). The PARTITIONED state — the Entities relation and the
// marker summaries — is the union over shards, with shard order
// restoring the original contiguous-range concatenation. The shards
// share read-only structures with the merged database afterwards; treat
// all of them as frozen (the same rule as ShardDB).
//
// This is what makes online N→M rebalancing (internal/fleet) possible
// without a full corpus rebuild: merge the N loaded shards, then
// re-partition the merged database M ways.
func MergeShards(shards []*DB) (*DB, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("core: merge of zero shards")
	}
	base := shards[0]
	tagger, ok := base.Extractor.Tagger.(*extract.PerceptronTagger)
	if !ok {
		return nil, fmt.Errorf("core: MergeShards supports the perceptron tagger, not %T", base.Extractor.Tagger)
	}
	st := base.State()
	merged := &DBState{
		Name:             st.Name,
		Cfg:              st.Cfg,
		Attrs:            st.Attrs,
		Extractions:      st.Extractions,
		ReviewSentiments: st.ReviewSentiments,
		Membership:       st.Membership,
		Summaries:        make(map[string]map[string]*MarkerSummary, len(st.Summaries)),
	}
	for attr := range st.Summaries {
		merged.Summaries[attr] = map[string]*MarkerSummary{}
	}

	prevLast := ""
	for i, sh := range shards {
		if sh.Name != base.Name {
			return nil, fmt.Errorf("core: shard %d is database %q, shard 0 is %q", i, sh.Name, base.Name)
		}
		// Drift gate: replicated state must have seen the same writes.
		if len(sh.Extractions) != len(base.Extractions) || len(sh.ReviewSentiments) != len(base.ReviewSentiments) {
			return nil, fmt.Errorf("core: shard %d replicated state diverges (%d extractions / %d reviews, shard 0 has %d / %d) — run write-repair before merging",
				i, len(sh.Extractions), len(sh.ReviewSentiments), len(base.Extractions), len(base.ReviewSentiments))
		}
		ids := sh.EntityIDs()
		if len(ids) == 0 {
			return nil, fmt.Errorf("core: shard %d serves no entities", i)
		}
		if i > 0 && ids[0] <= prevLast {
			return nil, fmt.Errorf("core: shard %d range starts at %q, not after shard %d's last entity %q — shards must be ordered by index",
				i, ids[0], i-1, prevLast)
		}
		prevLast = ids[len(ids)-1]
		for attr, byEntity := range sh.State().Summaries {
			dst := merged.Summaries[attr]
			if dst == nil {
				dst = map[string]*MarkerSummary{}
				merged.Summaries[attr] = dst
			}
			for id, s := range byEntity {
				if _, dup := dst[id]; dup {
					return nil, fmt.Errorf("core: entity %s carries a %s summary on two shards", id, attr)
				}
				dst[id] = s
			}
		}
	}

	rel, err := mergeEntityRows(shards)
	if err != nil {
		return nil, err
	}
	var subState *kdtree.SubstitutionIndexState
	if base.SubIndex != nil {
		s := base.SubIndex.State()
		subState = &s
	}
	db, err := FromState(merged, Components{
		Rel:         rel,
		Embed:       base.Embed,
		ReviewIndex: base.ReviewIndex,
		EntityIndex: base.EntityIndex,
		Tagger:      tagger,
		SubIndex:    subState,
	})
	if err != nil {
		return nil, fmt.Errorf("core: merge reconstruction: %w", err)
	}
	return db, nil
}

// mergeEntityRows rebuilds the relational layer with the Entities table
// as the concatenation of every shard's rows in shard order (contiguous
// ascending ranges, so the result restores the pre-partition row set);
// every other table comes from shard 0, where it is already complete.
func mergeEntityRows(shards []*DB) (*relstore.DB, error) {
	st := shards[0].Rel.State()
	var rows []relstore.Row
	for _, sh := range shards {
		rows = append(rows, sh.Rel.State().Rows["Entities"]...)
	}
	// Copy the rows map so the shard databases' relational states stay
	// untouched.
	merged := st
	merged.Rows = make(map[string][]relstore.Row, len(st.Rows))
	for name, r := range st.Rows {
		merged.Rows[name] = r
	}
	merged.Rows["Entities"] = rows
	return relstore.FromState(merged)
}

// restrictEntities rebuilds the relational layer with the Entities table
// limited to kept ids; Reviews and Extractions stay complete (reviewer
// counts and co-occurrence statistics are corpus-global).
func restrictEntities(rel *relstore.DB, keep func(string) bool) (*relstore.DB, error) {
	st := rel.State()
	for _, schema := range st.Schemas {
		if schema.Name != "Entities" {
			continue
		}
		keyIdx := -1
		for i, c := range schema.Columns {
			if c.Name == schema.Key {
				keyIdx = i
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("core: Entities relation has no key column")
		}
		rows := st.Rows[schema.Name]
		kept := make([]relstore.Row, 0, len(rows))
		for _, r := range rows {
			id, ok := r[keyIdx].(string)
			if !ok {
				return nil, fmt.Errorf("core: Entities key %v is not a string", r[keyIdx])
			}
			if keep(id) {
				kept = append(kept, r)
			}
		}
		st.Rows[schema.Name] = kept
	}
	return relstore.FromState(st)
}
