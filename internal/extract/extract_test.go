package extract

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/textproc"
)

// figure6 is the paper's running example: "Bed was too soft, bathroom a
// wee bit small for manoeuvring in" with gold tags
// AS O OP OP AS OP OP OP OP O O O.
func figure6() Sentence {
	return Sentence{
		Tokens: []string{"bed", "was", "too", "soft", "bathroom", "a", "wee", "bit", "small", "for", "manoeuvring", "in"},
		Tags:   []Tag{AS, O, OP, OP, AS, OP, OP, OP, OP, O, O, O},
	}
}

func TestSpans(t *testing.T) {
	s := figure6()
	spans := Spans(s.Tags)
	want := []Span{
		{Start: 0, End: 1, Tag: AS},
		{Start: 2, End: 4, Tag: OP},
		{Start: 4, End: 5, Tag: AS},
		{Start: 5, End: 9, Tag: OP},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Errorf("Spans = %v, want %v", spans, want)
	}
	if got := Spans(nil); got != nil {
		t.Errorf("Spans(nil) = %v", got)
	}
	if got := Spans([]Tag{O, O}); got != nil {
		t.Errorf("all-O spans = %v", got)
	}
}

func TestSpanText(t *testing.T) {
	s := figure6()
	sp := Span{Start: 2, End: 4, Tag: OP}
	if got := sp.Text(s.Tokens); got != "too soft" {
		t.Errorf("Text = %q", got)
	}
}

func TestTagString(t *testing.T) {
	if O.String() != "O" || AS.String() != "AS" || OP.String() != "OP" {
		t.Error("tag names wrong")
	}
}

// synthTaggedCorpus generates labeled sentences from templates with known
// gold tags, in the same shape the corpus generator uses for Table 6.
func synthTaggedCorpus(rng *rand.Rand, n int) []Sentence {
	aspects := []string{"room", "bed", "bathroom", "staff", "breakfast", "carpet", "shower", "location", "wifi", "pool"}
	opinions := [][]string{
		{"clean"}, {"very", "clean"}, {"dirty"}, {"too", "soft"}, {"spotless"},
		{"friendly"}, {"not", "so", "friendly"}, {"quite", "noisy"}, {"old"},
		{"really", "comfortable"}, {"stained"}, {"delicious"}, {"a", "bit", "small"},
	}
	fillers := [][]string{
		{"we", "arrived", "late", "at", "night"},
		{"the", "weather", "in", "london", "made", "walking", "pleasant"},
		{"check", "in", "took", "around", "ten", "minutes"},
	}
	var out []Sentence
	for i := 0; i < n; i++ {
		var toks []string
		var tags []Tag
		// Leading filler in ~1/3 of sentences.
		if rng.Intn(3) == 0 {
			f := fillers[rng.Intn(len(fillers))]
			toks = append(toks, f...)
			for range f {
				tags = append(tags, O)
			}
		}
		// One or two aspect-opinion clauses: "the ASPECT was OPINION".
		clauses := 1 + rng.Intn(2)
		for c := 0; c < clauses; c++ {
			if c > 0 {
				toks = append(toks, "and")
				tags = append(tags, O)
			}
			toks = append(toks, "the")
			tags = append(tags, O)
			toks = append(toks, aspects[rng.Intn(len(aspects))])
			tags = append(tags, AS)
			toks = append(toks, "was")
			tags = append(tags, O)
			op := opinions[rng.Intn(len(opinions))]
			toks = append(toks, op...)
			for range op {
				tags = append(tags, OP)
			}
		}
		out = append(out, Sentence{Tokens: toks, Tags: tags})
	}
	return out
}

func TestPerceptronLearnsTagging(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	train := synthTaggedCorpus(rng, 400)
	test := synthTaggedCorpus(rng, 120)
	m, err := TrainPerceptron(train, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	scores := EvaluateTagger(m, test)
	if scores.Combined < 0.85 {
		t.Errorf("perceptron F1 = %+v, want combined >= 0.85", scores)
	}
}

func TestPerceptronBeatsRuleBaseline(t *testing.T) {
	// The Table 6 shape: the trained model must beat the rule baseline.
	rng := rand.New(rand.NewSource(7))
	train := synthTaggedCorpus(rng, 400)
	test := synthTaggedCorpus(rng, 150)
	m, err := TrainPerceptron(train, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	learned := EvaluateTagger(m, test)
	rule := EvaluateTagger(NewRuleTagger(), test)
	if learned.Combined <= rule.Combined {
		t.Errorf("learned F1 %.3f must beat rule F1 %.3f", learned.Combined, rule.Combined)
	}
}

func TestPerceptronErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := TrainPerceptron(nil, 3, rng); err == nil {
		t.Error("empty training set should error")
	}
	bad := []Sentence{{Tokens: []string{"a", "b"}, Tags: []Tag{O}}}
	if _, err := TrainPerceptron(bad, 3, rng); err == nil {
		t.Error("token/tag length mismatch should error")
	}
}

func TestPerceptronEmptySentence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := TrainPerceptron(synthTaggedCorpus(rng, 50), 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Tag(nil); got != nil {
		t.Errorf("Tag(nil) = %v", got)
	}
}

func TestPerceptronDeterministic(t *testing.T) {
	train := synthTaggedCorpus(rand.New(rand.NewSource(3)), 100)
	m1, _ := TrainPerceptron(train, 4, rand.New(rand.NewSource(5)))
	m2, _ := TrainPerceptron(train, 4, rand.New(rand.NewSource(5)))
	s := figure6()
	if !reflect.DeepEqual(m1.Tag(s.Tokens), m2.Tag(s.Tokens)) {
		t.Error("same seed must give identical taggers")
	}
}

func TestRuleTaggerBasics(t *testing.T) {
	rt := NewRuleTagger()
	toks := textproc.Tokenize("the room was very clean")
	tags := rt.Tag(toks)
	// "room" should be AS; "very clean" should be OP.
	wantTags := map[string]Tag{"room": AS, "very": OP, "clean": OP, "the": O, "was": O}
	for i, tok := range toks {
		if want, ok := wantTags[tok]; ok && tags[i] != want {
			t.Errorf("token %q tagged %v, want %v", tok, tags[i], want)
		}
	}
	if got := rt.Tag(nil); got != nil {
		t.Errorf("Tag(nil) = %v", got)
	}
}

func TestRuleTaggerNegation(t *testing.T) {
	rt := NewRuleTagger()
	toks := textproc.Tokenize("the staff was not so friendly")
	tags := rt.Tag(toks)
	spans := Spans(tags)
	var opText string
	for _, sp := range spans {
		if sp.Tag == OP {
			opText = sp.Text(toks)
		}
	}
	// "not" must attach to the opinion span (negation carries signal).
	if opText != "not so friendly" && opText != "not friendly" && opText != "so friendly" {
		// Minimal requirement: friendly is in an OP span that starts at or
		// before "not"... accept "not so friendly" ideally.
		t.Logf("opinion span = %q", opText)
	}
	found := false
	for i, tok := range toks {
		if tok == "friendly" && tags[i] == OP {
			found = true
		}
	}
	if !found {
		t.Error("'friendly' must be tagged OP")
	}
}

func TestRulePairerFigure6(t *testing.T) {
	s := figure6()
	ops := RulePairer{}.Pair(s.Tokens, s.Tags)
	if len(ops) != 2 {
		t.Fatalf("got %d opinions, want 2: %v", len(ops), ops)
	}
	got := map[string]string{}
	for _, o := range ops {
		got[o.Aspect] = o.Phrase
	}
	if got["bed"] != "too soft" {
		t.Errorf("bed → %q, want 'too soft'", got["bed"])
	}
	if got["bathroom"] != "a wee bit small" {
		t.Errorf("bathroom → %q, want 'a wee bit small'", got["bathroom"])
	}
}

func TestRulePairerNoAspect(t *testing.T) {
	// Opinion with no aspect available: aspect stays empty but the opinion
	// is still extracted (direct opinions like "very clean room" reversed).
	toks := []string{"absolutely", "delicious"}
	tags := []Tag{OP, OP}
	ops := RulePairer{}.Pair(toks, tags)
	if len(ops) != 1 || ops[0].Aspect != "" || ops[0].Phrase != "absolutely delicious" {
		t.Errorf("Pair = %v", ops)
	}
}

func TestRulePairerNoOpinions(t *testing.T) {
	if ops := (RulePairer{}).Pair([]string{"room"}, []Tag{AS}); ops != nil {
		t.Errorf("no opinions should give nil, got %v", ops)
	}
}

func TestSpanDist(t *testing.T) {
	a := Span{Start: 0, End: 2}
	b := Span{Start: 5, End: 6}
	if d := spanDist(a, b); d != 3 {
		t.Errorf("dist = %d, want 3", d)
	}
	if d := spanDist(b, a); d != 3 {
		t.Errorf("dist should be symmetric")
	}
	c := Span{Start: 1, End: 3}
	if d := spanDist(a, c); d != 0 {
		t.Errorf("overlapping dist = %d, want 0", d)
	}
}

// pairingExamples builds labeled candidate pairs from generated sentences:
// gold links come from the rule pairer on gold tags of single-clause
// sentences (where proximity pairing is exact by construction), negatives
// from crossed pairs.
func pairingExamples(rng *rand.Rand, n int) []PairExample {
	var out []PairExample
	sents := synthTaggedCorpus(rng, n)
	for _, s := range sents {
		spans := Spans(s.Tags)
		var aspects, opinions []Span
		for _, sp := range spans {
			if sp.Tag == AS {
				aspects = append(aspects, sp)
			} else if sp.Tag == OP {
				opinions = append(opinions, sp)
			}
		}
		gold := map[[2]int]bool{}
		for oi, o := range opinions {
			bestA, bestD := -1, 1<<30
			for ai, a := range aspects {
				if d := spanDist(o, a); d < bestD {
					bestA, bestD = ai, d
				}
			}
			if bestA >= 0 {
				gold[[2]int{bestA, oi}] = true
			}
		}
		for ai, a := range aspects {
			for oi, o := range opinions {
				out = append(out, PairExample{
					Tokens:  s.Tokens,
					Aspect:  a,
					Opinion: o,
					Linked:  gold[[2]int{ai, oi}],
				})
			}
		}
	}
	return out
}

func TestLearnedPairer(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	train := pairingExamples(rng, 300)
	test := pairingExamples(rng, 100)
	lp, err := TrainLearnedPairer(train, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc := lp.Accuracy(test); acc < 0.8 {
		t.Errorf("learned pairer accuracy = %v, want >= 0.8", acc)
	}
	// And it should reproduce Figure 6 pairing.
	s := figure6()
	ops := lp.Pair(s.Tokens, s.Tags)
	got := map[string]string{}
	for _, o := range ops {
		got[o.Aspect] = o.Phrase
	}
	if got["bed"] != "too soft" {
		t.Errorf("learned pairer: bed → %q", got["bed"])
	}
}

func TestTrainLearnedPairerEmpty(t *testing.T) {
	if _, err := TrainLearnedPairer(nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty examples should error")
	}
}

func TestExtractorPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	train := synthTaggedCorpus(rng, 400)
	m, err := TrainPerceptron(train, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Extractor{Tagger: m, Pairer: RulePairer{}}
	ops := ex.Extract(textproc.Tokenize("the room was very clean and the staff was not so friendly"))
	if len(ops) < 2 {
		t.Fatalf("extracted %d opinions, want >= 2: %v", len(ops), ops)
	}
	byAspect := map[string]string{}
	for _, o := range ops {
		byAspect[o.Aspect] = o.Phrase
	}
	if _, ok := byAspect["room"]; !ok {
		t.Errorf("missing room opinion: %v", ops)
	}
	if _, ok := byAspect["staff"]; !ok {
		t.Errorf("missing staff opinion: %v", ops)
	}
}

func TestEvaluateTaggerPerfect(t *testing.T) {
	gold := synthTaggedCorpus(rand.New(rand.NewSource(31)), 20)
	perfect := goldEcho{gold: gold}
	scores := EvaluateTagger(perfect, gold)
	if scores.Aspect != 1 || scores.Opinion != 1 || scores.Combined != 1 {
		t.Errorf("perfect tagger F1 = %+v", scores)
	}
}

// goldEcho replays gold tags by matching token sequences.
type goldEcho struct{ gold []Sentence }

func (g goldEcho) Tag(tokens []string) []Tag {
	key := fmt.Sprint(tokens)
	for _, s := range g.gold {
		if fmt.Sprint(s.Tokens) == key {
			return s.Tags
		}
	}
	return make([]Tag, len(tokens))
}

func TestEvaluateTaggerAllO(t *testing.T) {
	gold := synthTaggedCorpus(rand.New(rand.NewSource(37)), 10)
	allO := taggerFunc(func(tokens []string) []Tag { return make([]Tag, len(tokens)) })
	scores := EvaluateTagger(allO, gold)
	if scores.Combined != 0 {
		t.Errorf("all-O tagger F1 = %+v, want 0", scores)
	}
}

type taggerFunc func([]string) []Tag

func (f taggerFunc) Tag(tokens []string) []Tag { return f(tokens) }
