package extract

import (
	"repro/internal/sentiment"
	"repro/internal/textproc"
)

// RuleTagger is the lexicon/window baseline tagger. It marks sentiment-
// lexicon words (with their attached intensifiers and negators) as opinion
// terms and content words adjacent to opinion spans as aspect terms. It
// requires no training, which is exactly why it trails the learned tagger
// in the Table 6 comparison: it cannot pick up corpus-specific aspect
// vocabulary or multi-word opinion expressions outside the lexicon.
type RuleTagger struct {
	// AspectWindow is how many tokens around an opinion span are searched
	// for an aspect term.
	AspectWindow int
}

// NewRuleTagger returns a baseline tagger with the default window of 3.
func NewRuleTagger() *RuleTagger { return &RuleTagger{AspectWindow: 3} }

// Tag implements Tagger.
func (rt *RuleTagger) Tag(tokens []string) []Tag {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	tags := make([]Tag, n)
	// Pass 1: opinion-lexicon words become OP.
	for i, w := range tokens {
		if _, ok := sentiment.Valence(w); ok {
			tags[i] = OP
		}
	}
	// Pass 2: attach preceding intensifiers/negators to opinion spans
	// ("too soft" → both tokens OP).
	for i := n - 2; i >= 0; i-- {
		if tags[i+1] == OP && tags[i] == O &&
			(sentiment.IsIntensifier(tokens[i]) || sentiment.IsNegator(tokens[i])) {
			tags[i] = OP
		}
	}
	// Pass 3: the nearest non-stopword, non-opinion content word within the
	// window before (preferred) or after each opinion span becomes AS.
	window := rt.AspectWindow
	if window <= 0 {
		window = 3
	}
	for _, sp := range Spans(tags) {
		if sp.Tag != OP {
			continue
		}
		found := false
		for d := 1; d <= window && !found; d++ {
			if j := sp.Start - d; j >= 0 && isContentWord(tokens[j], tags[j]) {
				tags[j] = AS
				found = true
			}
		}
		for d := 1; d <= window && !found; d++ {
			if j := sp.End - 1 + d; j < n && isContentWord(tokens[j], tags[j]) {
				tags[j] = AS
				found = true
			}
		}
	}
	return tags
}

// isContentWord reports whether a token is a plausible aspect term:
// untagged, not a stopword, not an opinion/intensity word.
func isContentWord(w string, current Tag) bool {
	if current != O {
		return false
	}
	if textproc.IsStopword(w) {
		return false
	}
	if _, ok := sentiment.Valence(w); ok {
		return false
	}
	if sentiment.IsIntensifier(w) || sentiment.IsNegator(w) {
		return false
	}
	return true
}
