package extract

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/sentiment"
	"repro/internal/textproc"
)

// PerceptronTagger is an averaged structured perceptron sequence tagger
// with first-order (tag bigram) transitions and Viterbi decoding. It fills
// the architectural role of the paper's BERT+BiLSTM+CRF extractor: a
// supervised tagger trained on a small labeled set, with the CRF's global
// decoding replaced by Viterbi over perceptron scores.
type PerceptronTagger struct {
	// weights maps feature → per-tag score contributions.
	weights map[string][NumTags]float64
	// trans[i][j] scores the transition from tag i to tag j.
	trans [NumTags][NumTags]float64
}

// TrainPerceptron trains on labeled sentences for the given number of
// epochs, shuffling with rng, and returns the averaged model. Averaging
// (Collins 2002) is what makes the small-training-set behaviour in Table 6
// stable.
func TrainPerceptron(train []Sentence, epochs int, rng *rand.Rand) (*PerceptronTagger, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("extract: no training sentences")
	}
	for i, s := range train {
		if len(s.Tokens) != len(s.Tags) {
			return nil, fmt.Errorf("extract: sentence %d has %d tokens but %d tags",
				i, len(s.Tokens), len(s.Tags))
		}
	}
	if epochs <= 0 {
		epochs = 5
	}

	cur := &PerceptronTagger{weights: make(map[string][NumTags]float64)}
	// Accumulators for weight averaging: total[f] holds the running sum of
	// weights over all updates, tracked lazily via timestamps.
	totals := make(map[string][NumTags]float64)
	stamps := make(map[string]int)
	var transTotals [NumTags][NumTags]float64
	var transStamps [NumTags][NumTags]int
	step := 0

	touchFeat := func(f string) {
		if last, ok := stamps[f]; ok && last < step {
			w := cur.weights[f]
			tot := totals[f]
			for t := 0; t < NumTags; t++ {
				tot[t] += float64(step-last) * w[t]
			}
			totals[f] = tot
		}
		stamps[f] = step
	}
	touchTrans := func(i, j int) {
		if last := transStamps[i][j]; last < step {
			transTotals[i][j] += float64(step-last) * cur.trans[i][j]
		}
		transStamps[i][j] = step
	}

	for epoch := 0; epoch < epochs; epoch++ {
		perm := rng.Perm(len(train))
		for _, si := range perm {
			s := train[si]
			if len(s.Tokens) == 0 {
				continue
			}
			step++
			pred := cur.Tag(s.Tokens)
			// Update on every mistagged position (token features) and every
			// wrong transition.
			prevGold, prevPred := -1, -1
			for i := range s.Tokens {
				g, p := int(s.Tags[i]), int(pred[i])
				if g != p {
					for _, f := range features(s.Tokens, i) {
						touchFeat(f)
						w := cur.weights[f]
						w[g]++
						w[p]--
						cur.weights[f] = w
					}
				}
				if prevGold >= 0 && (prevGold != prevPred || g != p) {
					touchTrans(prevGold, g)
					cur.trans[prevGold][g]++
					touchTrans(prevPred, p)
					cur.trans[prevPred][p]--
				}
				prevGold, prevPred = g, p
			}
		}
	}

	// Finalize averaging.
	step++
	avg := &PerceptronTagger{weights: make(map[string][NumTags]float64, len(cur.weights))}
	for f, w := range cur.weights {
		tot := totals[f]
		last := stamps[f]
		for t := 0; t < NumTags; t++ {
			tot[t] += float64(step-last) * w[t]
			tot[t] /= float64(step)
		}
		avg.weights[f] = tot
	}
	for i := 0; i < NumTags; i++ {
		for j := 0; j < NumTags; j++ {
			tot := transTotals[i][j] + float64(step-transStamps[i][j])*cur.trans[i][j]
			avg.trans[i][j] = tot / float64(step)
		}
	}
	return avg, nil
}

// PerceptronState is the exported serialization seam for PerceptronTagger:
// the averaged feature weights and transition matrix, i.e. everything Tag
// needs. Weights is shared with the live tagger, not copied — treat a
// state taken from a live tagger as read-only.
type PerceptronState struct {
	Weights map[string][NumTags]float64
	Trans   [NumTags][NumTags]float64
}

// State exports the trained tagger for serialization.
func (p *PerceptronTagger) State() PerceptronState {
	return PerceptronState{Weights: p.weights, Trans: p.trans}
}

// NewPerceptronFromState reconstructs a tagger from exported state.
// Viterbi decoding is a pure function of the restored scores, so the
// reconstructed tagger tags identically to the original.
func NewPerceptronFromState(st PerceptronState) *PerceptronTagger {
	if st.Weights == nil {
		st.Weights = make(map[string][NumTags]float64)
	}
	return &PerceptronTagger{weights: st.Weights, trans: st.Trans}
}

// Tag implements Tagger via Viterbi decoding over the learned scores.
func (p *PerceptronTagger) Tag(tokens []string) []Tag {
	n := len(tokens)
	if n == 0 {
		return nil
	}
	// Emission scores.
	emit := make([][NumTags]float64, n)
	for i := range tokens {
		for _, f := range features(tokens, i) {
			if w, ok := p.weights[f]; ok {
				for t := 0; t < NumTags; t++ {
					emit[i][t] += w[t]
				}
			}
		}
	}
	// Viterbi.
	var prev [NumTags]float64
	back := make([][NumTags]int, n)
	for t := 0; t < NumTags; t++ {
		prev[t] = emit[0][t]
	}
	for i := 1; i < n; i++ {
		var next [NumTags]float64
		for t := 0; t < NumTags; t++ {
			bestS, bestFrom := prev[0]+p.trans[0][t], 0
			for from := 1; from < NumTags; from++ {
				if s := prev[from] + p.trans[from][t]; s > bestS {
					bestS, bestFrom = s, from
				}
			}
			next[t] = bestS + emit[i][t]
			back[i][t] = bestFrom
		}
		prev = next
	}
	best := 0
	for t := 1; t < NumTags; t++ {
		if prev[t] > prev[best] {
			best = t
		}
	}
	tags := make([]Tag, n)
	tags[n-1] = Tag(best)
	for i := n - 1; i > 0; i-- {
		best = back[i][best]
		tags[i-1] = Tag(best)
	}
	return tags
}

// features returns the feature strings for position i. The templates mirror
// classic CRF tagging features: identity and shape of the token and its
// neighbours, affixes, and lexicon indicators.
func features(tokens []string, i int) []string {
	w := tokens[i]
	out := make([]string, 0, 16)
	out = append(out, "w="+w)
	if len(w) >= 3 {
		out = append(out, "pre3="+w[:3], "suf3="+w[len(w)-3:])
	}
	if _, isOp := sentiment.Valence(w); isOp {
		out = append(out, "lex=op")
	}
	if sentiment.IsIntensifier(w) {
		out = append(out, "lex=int")
	}
	if sentiment.IsNegator(w) {
		out = append(out, "lex=neg")
	}
	if textproc.IsStopword(w) {
		out = append(out, "lex=stop")
	}
	out = append(out, "len="+strconv.Itoa(min(len(w), 8)))
	if i > 0 {
		out = append(out, "w-1="+tokens[i-1])
		if _, isOp := sentiment.Valence(tokens[i-1]); isOp {
			out = append(out, "lex-1=op")
		}
		if sentiment.IsIntensifier(tokens[i-1]) {
			out = append(out, "lex-1=int")
		}
	} else {
		out = append(out, "w-1=<s>")
	}
	if i+1 < len(tokens) {
		out = append(out, "w+1="+tokens[i+1])
		if _, isOp := sentiment.Valence(tokens[i+1]); isOp {
			out = append(out, "lex+1=op")
		}
	} else {
		out = append(out, "w+1=</s>")
	}
	if i > 1 {
		out = append(out, "w-2="+tokens[i-2])
	}
	if i+2 < len(tokens) {
		out = append(out, "w+2="+tokens[i+2])
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
