package extract

// F1Scores holds the extraction-quality metrics of Table 6: per-tag span
// F1 for aspect terms and opinion terms, and their average (the paper's
// "combined F1 score").
type F1Scores struct {
	Aspect   float64
	Opinion  float64
	Combined float64
}

// spanKey identifies a span within a sentence for exact matching; the
// paper counts a term correct "only when the extracted term matches
// exactly with the ground truth term".
type spanKey struct {
	sent, start, end int
	tag              Tag
}

// EvaluateTagger computes span-exact F1 of a tagger against gold sentences.
func EvaluateTagger(tagger Tagger, gold []Sentence) F1Scores {
	var tpAS, fpAS, fnAS int
	var tpOP, fpOP, fnOP int
	for si, s := range gold {
		pred := tagger.Tag(s.Tokens)
		goldSet := make(map[spanKey]bool)
		for _, sp := range Spans(s.Tags) {
			goldSet[spanKey{si, sp.Start, sp.End, sp.Tag}] = true
		}
		predSet := make(map[spanKey]bool)
		for _, sp := range Spans(pred) {
			predSet[spanKey{si, sp.Start, sp.End, sp.Tag}] = true
		}
		for k := range predSet {
			if goldSet[k] {
				if k.tag == AS {
					tpAS++
				} else {
					tpOP++
				}
			} else {
				if k.tag == AS {
					fpAS++
				} else {
					fpOP++
				}
			}
		}
		for k := range goldSet {
			if !predSet[k] {
				if k.tag == AS {
					fnAS++
				} else {
					fnOP++
				}
			}
		}
	}
	f1 := func(tp, fp, fn int) float64 {
		if tp == 0 {
			return 0
		}
		p := float64(tp) / float64(tp+fp)
		r := float64(tp) / float64(tp+fn)
		return 2 * p * r / (p + r)
	}
	a, o := f1(tpAS, fpAS, fnAS), f1(tpOP, fpOP, fnOP)
	return F1Scores{Aspect: a, Opinion: o, Combined: (a + o) / 2}
}
