// Package extract implements OpineDB's opinion extractor (§4.1): a
// two-stage tagging + pairing pipeline. Tokens of a review sentence are
// tagged as aspect terms (AS), opinion terms (OP) or irrelevant (O), then
// tagged spans are paired into (aspect term, opinion term) opinions, e.g.
//
//	"Bed was too soft, bathroom a wee bit small"
//	→ {("bed", "too soft"), ("bathroom", "a wee bit small")}
//
// Two taggers are provided. PerceptronTagger is a trained sequence model
// (averaged structured perceptron with Viterbi decoding) standing in for
// the paper's BERT+BiLSTM+CRF: a supervised tagger fine-tuned on a few
// hundred labeled sentences. RuleTagger is the weaker lexicon/window
// baseline standing in for the prior state of the art in the Table 6
// comparison. Pairing offers the rule-based and learned variants of
// Appendix C.
package extract

import "fmt"

// Tag is a per-token label.
type Tag uint8

// Token tags, following Figure 6 of the paper.
const (
	O  Tag = iota // irrelevant
	AS            // part of an aspect term
	OP            // part of an opinion term
)

// NumTags is the size of the tag alphabet.
const NumTags = 3

// String returns the tag mnemonic.
func (t Tag) String() string {
	switch t {
	case O:
		return "O"
	case AS:
		return "AS"
	case OP:
		return "OP"
	default:
		return fmt.Sprintf("Tag(%d)", uint8(t))
	}
}

// Sentence is a tokenized sentence with (gold or predicted) tags.
type Sentence struct {
	Tokens []string
	Tags   []Tag
}

// Span is a maximal run of equally-tagged tokens.
type Span struct {
	Start, End int // token range [Start, End)
	Tag        Tag
}

// Text returns the space-joined tokens of the span within tokens.
func (s Span) Text(tokens []string) string {
	out := ""
	for i := s.Start; i < s.End; i++ {
		if i > s.Start {
			out += " "
		}
		out += tokens[i]
	}
	return out
}

// Spans extracts the maximal non-O spans from a tag sequence.
func Spans(tags []Tag) []Span {
	var out []Span
	i := 0
	for i < len(tags) {
		if tags[i] == O {
			i++
			continue
		}
		j := i + 1
		for j < len(tags) && tags[j] == tags[i] {
			j++
		}
		out = append(out, Span{Start: i, End: j, Tag: tags[i]})
		i = j
	}
	return out
}

// Opinion is one extracted (aspect term, opinion term) pair.
type Opinion struct {
	Aspect                 string
	Phrase                 string // the opinion term
	AspectSpan, PhraseSpan Span
}

// Tagger assigns a tag to every token of a sentence.
type Tagger interface {
	// Tag returns one tag per token.
	Tag(tokens []string) []Tag
}
