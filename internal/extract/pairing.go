package extract

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/classify"
)

// Pairer links tagged aspect spans to opinion spans, producing the
// extracted opinions of a sentence.
type Pairer interface {
	// Pair returns the (aspect, opinion) pairs for a tagged sentence.
	Pair(tokens []string, tags []Tag) []Opinion
}

// RulePairer is the unsupervised pairing model of Appendix C: linked
// aspect and opinion terms are usually close to each other, so it greedily
// links each opinion span to the nearest unconsumed aspect span by token
// distance (our stand-in for parse-tree distance).
type RulePairer struct{}

// Pair implements Pairer.
func (RulePairer) Pair(tokens []string, tags []Tag) []Opinion {
	spans := Spans(tags)
	var aspects, opinions []Span
	for _, s := range spans {
		switch s.Tag {
		case AS:
			aspects = append(aspects, s)
		case OP:
			opinions = append(opinions, s)
		}
	}
	if len(opinions) == 0 {
		return nil
	}
	// Greedy: process candidate links in increasing distance order; each
	// aspect may serve multiple opinions but each opinion links once.
	// Aspects that FOLLOW their opinion are penalized: "bed was too soft,
	// bathroom ..." must link "too soft" to the preceding "bed", not the
	// adjacent-but-following "bathroom". This positional preference is the
	// surface-order analogue of the parse-tree distance in Appendix C.
	const followPenalty = 2
	type link struct {
		op, as int
		dist   int
	}
	var links []link
	for oi, o := range opinions {
		for ai, a := range aspects {
			d := spanDist(o, a)
			if a.Start > o.Start {
				d += followPenalty
			}
			links = append(links, link{op: oi, as: ai, dist: d})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].dist != links[j].dist {
			return links[i].dist < links[j].dist
		}
		if links[i].op != links[j].op {
			return links[i].op < links[j].op
		}
		return links[i].as < links[j].as
	})
	chosen := make(map[int]int) // opinion index → aspect index
	for _, l := range links {
		if _, done := chosen[l.op]; !done {
			chosen[l.op] = l.as
		}
	}
	out := make([]Opinion, 0, len(opinions))
	for oi, o := range opinions {
		op := Opinion{Phrase: o.Text(tokens), PhraseSpan: o}
		if ai, ok := chosen[oi]; ok {
			op.Aspect = aspects[ai].Text(tokens)
			op.AspectSpan = aspects[ai]
		}
		out = append(out, op)
	}
	return out
}

// spanDist is the token gap between two spans (0 if adjacent/overlapping).
func spanDist(a, b Span) int {
	switch {
	case a.End <= b.Start:
		return b.Start - a.End
	case b.End <= a.Start:
		return a.Start - b.End
	default:
		return 0
	}
}

// LearnedPairer is the supervised pairing model of Appendix C: a binary
// classifier over candidate (aspect span, opinion span) pairs. The paper
// fine-tunes BERT on 1,000 sentence-phrase pairs reaching 83.87% accuracy;
// we train logistic regression over positional features of the candidate
// pair, which captures the same "distance on the sentence" signal.
type LearnedPairer struct {
	model *classify.LogReg
}

// PairExample is a labeled candidate pair for training the LearnedPairer.
type PairExample struct {
	Tokens  []string
	Aspect  Span
	Opinion Span
	Linked  bool
}

// pairFeatures builds the feature vector for a candidate pair.
func pairFeatures(tokens []string, aspect, opinion Span) []float64 {
	dist := float64(spanDist(aspect, opinion))
	order := 0.0 // aspect precedes opinion ("bed was soft")
	if aspect.Start <= opinion.Start {
		order = 1.0
	}
	commaBetween := 0.0
	lo, hi := aspect.End, opinion.Start
	if opinion.End <= aspect.Start {
		lo, hi = opinion.End, aspect.Start
	}
	for i := lo; i < hi && i < len(tokens); i++ {
		if tokens[i] == "," || tokens[i] == "and" || tokens[i] == "but" {
			commaBetween = 1.0
		}
	}
	adjacent := 0.0
	if dist <= 1 {
		adjacent = 1.0
	}
	return []float64{dist, dist * dist / 10, order, commaBetween, adjacent}
}

// TrainLearnedPairer fits the supervised pairer on labeled candidates.
func TrainLearnedPairer(examples []PairExample, rng *rand.Rand) (*LearnedPairer, error) {
	if len(examples) == 0 {
		return nil, fmt.Errorf("extract: no pairing examples")
	}
	train := make([]classify.Example, len(examples))
	for i, ex := range examples {
		label := 0
		if ex.Linked {
			label = 1
		}
		train[i] = classify.Example{
			Features: pairFeatures(ex.Tokens, ex.Aspect, ex.Opinion),
			Label:    label,
		}
	}
	m, err := classify.TrainLogReg(train, classify.DefaultLogRegConfig(), rng)
	if err != nil {
		return nil, err
	}
	return &LearnedPairer{model: m}, nil
}

// Accuracy evaluates the pairer's link/no-link decisions on examples.
func (lp *LearnedPairer) Accuracy(examples []PairExample) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		want := 0
		if ex.Linked {
			want = 1
		}
		if lp.model.Predict(pairFeatures(ex.Tokens, ex.Aspect, ex.Opinion)) == want {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// Pair implements Pairer: each opinion span links to the aspect span with
// the highest link probability, provided it clears 0.5.
func (lp *LearnedPairer) Pair(tokens []string, tags []Tag) []Opinion {
	spans := Spans(tags)
	var aspects, opinions []Span
	for _, s := range spans {
		switch s.Tag {
		case AS:
			aspects = append(aspects, s)
		case OP:
			opinions = append(opinions, s)
		}
	}
	out := make([]Opinion, 0, len(opinions))
	for _, o := range opinions {
		op := Opinion{Phrase: o.Text(tokens), PhraseSpan: o}
		bestP := 0.5
		for _, a := range aspects {
			if p := lp.model.Prob(pairFeatures(tokens, a, o)); p > bestP {
				bestP = p
				op.Aspect = a.Text(tokens)
				op.AspectSpan = a
			}
		}
		out = append(out, op)
	}
	return out
}

// Extractor bundles a tagger and pairer into the full two-stage pipeline
// of Figure 6.
type Extractor struct {
	Tagger Tagger
	Pairer Pairer
}

// Extract runs tagging then pairing on one tokenized sentence.
func (e *Extractor) Extract(tokens []string) []Opinion {
	tags := e.Tagger.Tag(tokens)
	return e.Pairer.Pair(tokens, tags)
}
