// Ablation benchmarks for the design decisions DESIGN.md calls out:
// fuzzy variant (product vs Gödel), the w2v threshold θ1, marker count k,
// and Threshold-Algorithm top-k vs exhaustive scan.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fuzzy"
	"repro/internal/harness"
)

// ablationQuality runs a fixed query workload and returns mean result
// quality under current db settings.
func ablationQuality(b *testing.B, d *corpus.Dataset, db *core.DB, seed int64) float64 {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	queries := harness.SampleQueries(d.Predicates, 15, 4, rng)
	cands := map[string]bool{}
	for _, e := range d.Entities {
		cands[e.ID] = true
	}
	opts := core.DefaultQueryOptions()
	var sum float64
	var n int
	for _, q := range queries {
		texts := harness.PredTexts(d, q)
		qr, err := db.RankPredicates(texts, nil, opts)
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, len(qr.Rows))
		for i, r := range qr.Rows {
			ids[i] = r.EntityID
		}
		if v := harness.QueryQuality(d, q, ids, cands, 10); v >= 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// BenchmarkAblationFuzzyVariant compares ranking quality under the
// product t-norm (the paper's choice) and the Gödel min/max variant.
func BenchmarkAblationFuzzyVariant(b *testing.B) {
	hotels, _, hdb, _ := benchFixtures(b)
	defer hdb.SetFuzzyVariant(fuzzy.Product)
	var prod, goedel float64
	for i := 0; i < b.N; i++ {
		hdb.SetFuzzyVariant(fuzzy.Product)
		prod = ablationQuality(b, hotels, hdb, int64(41+i))
		hdb.SetFuzzyVariant(fuzzy.Goedel)
		goedel = ablationQuality(b, hotels, hdb, int64(41+i))
	}
	b.ReportMetric(prod, "product-ndcg")
	b.ReportMetric(goedel, "goedel-ndcg")
}

// BenchmarkAblationW2VThreshold sweeps θ1 and reports combined
// interpretation accuracy at each setting.
func BenchmarkAblationW2VThreshold(b *testing.B) {
	hotels, _, hdb, _ := benchFixtures(b)
	orig := hdb.Config().W2VThreshold
	defer hdb.SetW2VThreshold(orig)
	accAt := func(theta float64) float64 {
		hdb.SetW2VThreshold(theta)
		hits, total := 0, 0
		for _, p := range hotels.Predicates {
			if p.GoldAttribute == "" {
				continue
			}
			total++
			in := hdb.Interpret(p.Text)
			for _, term := range in.Terms {
				if term.Attr == p.GoldAttribute {
					hits++
					break
				}
			}
		}
		return 100 * float64(hits) / float64(total)
	}
	var lo, mid, hi float64
	for i := 0; i < b.N; i++ {
		lo, mid, hi = accAt(0.6), accAt(0.75), accAt(0.9)
	}
	b.ReportMetric(lo, "acc-θ1=0.60")
	b.ReportMetric(mid, "acc-θ1=0.75")
	b.ReportMetric(hi, "acc-θ1=0.90")
}

// BenchmarkAblationMarkerCount builds databases with k ∈ {4, 10, 16}
// markers per attribute and reports ranking quality for each — the §2
// granularity decision the schema designer owns.
func BenchmarkAblationMarkerCount(b *testing.B) {
	cfg := corpus.SmallConfig()
	cfg.HotelsLondon, cfg.HotelsAmsterdam = 50, 20
	cfg.ReviewsPerHotel = 16
	d := corpus.GenerateHotels(cfg)
	quality := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, k := range []int{4, 10, 16} {
			c := core.DefaultConfig()
			c.MarkersPerAttr = k
			db, err := harness.BuildDB(d, c, 500, 400)
			if err != nil {
				b.Fatal(err)
			}
			quality[k] = ablationQuality(b, d, db, 61)
		}
	}
	b.ReportMetric(quality[4], "ndcg-k=4")
	b.ReportMetric(quality[10], "ndcg-k=10")
	b.ReportMetric(quality[16], "ndcg-k=16")
}

// BenchmarkTopKThresholdAlgorithm measures TA top-10 over precomputed
// degree lists (after warm-up, the steady-state serving path).
func BenchmarkTopKThresholdAlgorithm(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	preds := []string{"has really clean rooms", "has friendly staff", "serves excellent breakfast"}
	if _, _, err := hdb.TopKThreshold(preds, 10); err != nil { // warm caches
		b.Fatal(err)
	}
	b.ResetTimer()
	var stats core.TopKStats
	for i := 0; i < b.N; i++ {
		var err error
		_, stats, err = hdb.TopKThreshold(preds, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Depth), "list-depth")
	b.ReportMetric(float64(len(hdb.EntityIDs())), "entities")
}

// BenchmarkTopKFullScan is the exhaustive counterpart: every entity is
// aggregated (TA with k = all, which cannot terminate early).
func BenchmarkTopKFullScan(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	preds := []string{"has really clean rooms", "has friendly staff", "serves excellent breakfast"}
	n := len(hdb.EntityIDs())
	if _, _, err := hdb.TopKThreshold(preds, n); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hdb.TopKThreshold(preds, n); err != nil {
			b.Fatal(err)
		}
	}
}
