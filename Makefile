# Tier-1 verification gate (referenced from ROADMAP.md): gofmt
# cleanliness, vet, build, and the full test suite under the race
# detector. CI and pre-merge checks run `make verify`.
.PHONY: verify fmtcheck build test race bench serve snapshot snapshot-smoke

verify: fmtcheck
	go vet ./...
	go build ./...
	go test -race ./...

# gofmt cleanliness: fail listing any file that gofmt would rewrite.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Performance trajectory: every table/figure benchmark plus the
# concurrency, build, and snapshot persistence benchmarks.
bench:
	go test -bench . -benchmem -run xxx .

# Run the HTTP serving daemon on a small corpus (in-process build).
serve:
	go run ./cmd/opinedbd -small -addr :8080

# Build-once / serve-many: write a snapshot artifact, then serve it.
#   make snapshot && go run ./cmd/opinedbd -snapshot opinedb.snap
snapshot:
	go run ./cmd/opinedbb -o opinedb.snap

# Snapshot smoke test: build a small corpus, save, reload, and check the
# loaded database answers byte-identically (plus one live query).
snapshot-smoke:
	go run ./cmd/opinedbb -small -verify -o /tmp/opinedb-smoke.snap
