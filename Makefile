# Tier-1 verification gate (referenced from ROADMAP.md): gofmt
# cleanliness, vet, build, and the full test suite under the race
# detector. CI and pre-merge checks run `make verify`.
.PHONY: verify fmtcheck build test race bench cover fuzz-smoke serve snapshot snapshot-smoke shard-smoke journal-smoke rebalance-smoke load-smoke write-smoke replica-smoke trace-smoke slo-check compact rebalance

verify: fmtcheck
	go vet ./...
	go build ./...
	go test -race ./...

# Coverage floor: internal/core + internal/snapshot + internal/journal +
# internal/fleet own the correctness contracts (byte-identical serving,
# typed corruption errors, crash-safe replay, fleet convergence), so
# their combined statement coverage must stay at or above 75%.
COVER_FLOOR := 75
cover:
	go test -coverprofile=cover.out ./internal/core ./internal/snapshot ./internal/journal ./internal/fleet
	@go tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); \
		if ($$3 + 0 < $(COVER_FLOOR)) { printf "coverage %.1f%% is below the %d%% floor\n", $$3, $(COVER_FLOOR); exit 1 } \
		else { printf "coverage %.1f%% (floor $(COVER_FLOOR)%%)\n", $$3 } }'

# Short coverage-guided fuzz smoke over each fuzz target (CI runs this;
# longer local runs: go test -fuzz=FuzzParseQuery -fuzztime 5m ...).
FUZZTIME := 10s
fuzz-smoke:
	go test -run xxx -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/sqlparse
	go test -run xxx -fuzz FuzzSnapshotLoad -fuzztime $(FUZZTIME) ./internal/snapshot
	go test -run xxx -fuzz FuzzJournalReplay -fuzztime $(FUZZTIME) ./internal/journal

# gofmt cleanliness: fail listing any file that gofmt would rewrite.
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Performance trajectory: every table/figure benchmark plus the
# concurrency, build, and snapshot persistence benchmarks.
bench:
	go test -bench . -benchmem -run xxx .

# Run the HTTP serving daemon on a small corpus (in-process build).
serve:
	go run ./cmd/opinedbd -small -addr :8080

# Build-once / serve-many: write a snapshot artifact, then serve it.
#   make snapshot && go run ./cmd/opinedbd -snapshot opinedb.snap
snapshot:
	go run ./cmd/opinedbb -o opinedb.snap

# Snapshot smoke test: build a small corpus, save, reload, and check the
# loaded database answers byte-identically (plus one live query).
snapshot-smoke:
	go run ./cmd/opinedbb -small -verify -o /tmp/opinedb-smoke.snap

# Sharding smoke test: build a small corpus, partition into 4 per-shard
# snapshots + manifest, reload the fleet behind the router, and check it
# answers byte-identically to the monolith.
shard-smoke:
	go run ./cmd/opinedbb -small -shards 4 -verify -o /tmp/opinedb-shard-smoke.snap

# Journal crash-recovery smoke test: build a small corpus, snapshot it,
# ingest review deltas from a child process, SIGKILL it mid-write, then
# reload snapshot+journal and check the replayed state fingerprints
# byte-identically to direct application (and survives compaction).
journal-smoke:
	go run ./cmd/opinedbb -small -journal-smoke -o /tmp/opinedb-journal-smoke.snap

# Rebalancing smoke test: build a 4-shard fleet, ingest review deltas
# through the router (journaled, fleet-ordered), rebalance to 2 and then
# to 8 shards without a rebuild, and check each fleet answers
# byte-identically to the enriched monolith.
rebalance-smoke:
	go run ./cmd/opinedbb -rebalance-smoke

# Load smoke test: build a journaled 4-shard in-process fleet on a
# loopback listener, drive 5s of mixed read/write traffic over real TCP,
# and fail unless every operation kind served with zero errors and
# measured latency percentiles.
load-smoke:
	go run ./cmd/opinedbload -smoke -duration 5s -concurrency 8

# Write smoke test: drive a write-heavy mix at a journaled 4-shard
# in-process fleet with group commit on, then replay one node's journal
# into the pre-fleet monolith and require the routed fleet to answer the
# full query set byte-identically — zero errors, every ack durable, and
# concurrency changed scheduling, not state.
write-smoke:
	go run ./cmd/opinedbload -smoke -duration 5s -concurrency 16 \
		-mix query=1,topk=1,interpret=1,reviews=6 -fingerprint

# Replication smoke test: build an R=2 fleet, drive the mixed load
# through the router, and mid-load JOIN a third replica on the hot range
# (snapshot + journal catch-up, admitted with the byte-identity proof)
# then KILL an original replica outright. Fail unless every request
# served through both transitions, the joiner's journal is hash-identical
# to a survivor's, and the fleet stays byte-identical to the enriched
# monolith.
replica-smoke:
	go run ./cmd/opinedbb -replica-smoke

# Tracing smoke test: build a routed R=2 fleet with one artificially
# slow replica, drive the mixed load over real TCP, and fail unless the
# shared trace store holds a hedge-won request whose scatter legs carry
# shard/replica attribution and whose server-side spans joined the same
# trace — the end-to-end proof that header propagation, hedging
# attribution, and tail sampling compose. -fingerprint keeps the
# byte-identity gate on the same run: tracing must not perturb answers.
trace-smoke:
	go run ./cmd/opinedbload -smoke -trace-smoke -duration 5s -concurrency 8 \
		-replicas 2 -slow-replica 25ms -slow-ms 25 -fingerprint

# Advisory SLO gate: rerun the quick load experiment and compare its
# per-op p95s and throughput against the committed baseline. Warn-only —
# shared CI runners are too noisy for a hard latency gate; a human reads
# the warnings next to the diff that caused them.
slo-check:
	go run ./cmd/benchall -quick -baseline BENCH_baseline.json \
		-skip table3,table4,table5,table6,table7,table8,figure7,figure8,appendixB,appendixC,concurrency,persistence,sharding,rebalance,replication,replicaops,groupcommit

# Fold a served snapshot's review journal back into a fresh artifact:
#   make compact SNAP=opinedb.snap     (or SNAP=hotel.manifest.json)
SNAP := opinedb.snap
compact:
	go run ./cmd/opinedbb -compact $(SNAP)

# Re-partition a stopped fleet to N shards without a rebuild:
#   make rebalance MANIFEST=hotel.manifest.json SHARDS=8
MANIFEST := opinedb.manifest.json
SHARDS := 2
rebalance:
	go run ./cmd/opinedbb -rebalance $(SHARDS) -manifest $(MANIFEST)
