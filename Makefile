# Tier-1 verification gate (referenced from ROADMAP.md): vet, build,
# and the full test suite under the race detector. CI and pre-merge
# checks run `make verify`.
.PHONY: verify build test race bench serve

verify:
	go vet ./...
	go build ./...
	go test -race ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Performance trajectory: every table/figure benchmark plus the
# concurrency and build benchmarks.
bench:
	go test -bench . -benchmem -run xxx .

# Run the HTTP serving daemon on a small corpus.
serve:
	go run ./cmd/opinedbd -small -addr :8080
