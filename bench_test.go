// Package repro's root benchmark suite regenerates every table and figure
// of "Subjective Databases" (VLDB 2019). Each benchmark runs one
// experiment end-to-end and reports its headline numbers as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation. The tables themselves are printed by
// cmd/benchall; here the focus is regression-trackable metrics.
package repro_test

import (
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/embedding"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/kdtree"
	"repro/internal/snapshot"
	"repro/internal/textproc"
)

// Benchmark fixture: one mid-scale corpus + database pair shared by all
// table benchmarks (building is itself benchmarked separately).
var (
	benchOnce    sync.Once
	benchHotels  *corpus.Dataset
	benchRest    *corpus.Dataset
	benchHotelDB *core.DB
	benchRestDB  *core.DB
	benchErr     error
)

func benchFixtures(b *testing.B) (*corpus.Dataset, *corpus.Dataset, *core.DB, *core.DB) {
	b.Helper()
	benchOnce.Do(func() {
		cfg := corpus.SmallConfig()
		cfg.HotelsLondon, cfg.HotelsAmsterdam = 80, 35
		cfg.ReviewsPerHotel = 24
		cfg.Restaurants = 120
		cfg.ReviewsPerRestaurant = 12
		benchHotels = corpus.GenerateHotels(cfg)
		benchRest = corpus.GenerateRestaurants(cfg)
		c := core.DefaultConfig()
		c.UseSubstitutionIndex = true
		if benchHotelDB, benchErr = harness.BuildDB(benchHotels, c, 800, 800); benchErr != nil {
			return
		}
		benchRestDB, benchErr = harness.BuildDB(benchRest, c, 800, 800)
	})
	if benchErr != nil {
		b.Fatalf("fixture: %v", benchErr)
	}
	return benchHotels, benchRest, benchHotelDB, benchRestDB
}

// BenchmarkTable3_SurveySubjectivity regenerates the §5.1 user study.
func BenchmarkTable3_SurveySubjectivity(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable3(int64(i + 1))
		pct = 0
		for _, r := range rows {
			pct += r.SubjectivePct / float64(len(rows))
		}
	}
	b.ReportMetric(pct, "avg-subjective-%")
}

// BenchmarkTable4_ReviewStats regenerates the corpus statistics table.
func BenchmarkTable4_ReviewStats(b *testing.B) {
	hotels, rest, _, _ := benchFixtures(b)
	b.ResetTimer()
	var rows []harness.Table4Row
	for i := 0; i < b.N; i++ {
		rows = harness.RunTable4(hotels, rest)
	}
	b.ReportMetric(rows[0].AvgWords, "hotel-avg-words")
	b.ReportMetric(rows[2].AvgWords, "restaurant-avg-words")
}

// BenchmarkTable5_QualityVsBaselines regenerates the §5.3 comparison.
func BenchmarkTable5_QualityVsBaselines(b *testing.B) {
	hotels, rest, hdb, rdb := benchFixtures(b)
	cfg := harness.Table5Config{QueriesPerSet: 10, Trials: 1, TopK: 10, Seed: 11}
	b.ResetTimer()
	var results []harness.Table5Result
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(11 + i)
		results = harness.RunTable5(hotels, rest, hdb, rdb, cfg)
	}
	b.ReportMetric(results[0].Cells["OpineDB"]["hard"].Mean, "opinedb-london-hard")
	b.ReportMetric(results[0].Cells["GZ12 (IR-based)"]["hard"].Mean, "gz12-london-hard")
}

// BenchmarkTable6_ExtractorF1 regenerates the extractor comparison.
func BenchmarkTable6_ExtractorF1(b *testing.B) {
	var rows []harness.Table6Row
	for i := 0; i < b.N; i++ {
		rows = harness.RunTable6(1, int64(17+i))
	}
	b.ReportMetric(rows[3].OurF1, "hotel-f1")
	b.ReportMetric(rows[3].SOTAF1, "hotel-sota-f1")
}

// BenchmarkTable7_MarkerSpeedup regenerates the marker-summary ablation.
func BenchmarkTable7_MarkerSpeedup(b *testing.B) {
	hotels, rest, hdb, rdb := benchFixtures(b)
	cfg := harness.Table7Config{QueriesPerSet: 25, Conjuncts: 4, TopK: 10, Seed: 23}
	b.ResetTimer()
	var cols []harness.Table7Column
	for i := 0; i < b.N; i++ {
		cols = harness.RunTable7(hotels, rest, hdb, rdb, cfg)
	}
	var avg float64
	for _, c := range cols {
		avg += c.Speedup / float64(len(cols))
	}
	b.ReportMetric(avg, "avg-speedup-x")
}

// BenchmarkTable8_InterpreterAccuracy regenerates the interpretation
// accuracy study.
func BenchmarkTable8_InterpreterAccuracy(b *testing.B) {
	hotels, rest, hdb, rdb := benchFixtures(b)
	b.ResetTimer()
	var rows []harness.Table8Row
	for i := 0; i < b.N; i++ {
		rows = harness.RunTable8(hotels, rest, hdb, rdb, int64(9+i))
	}
	b.ReportMetric(rows[0].W2V, "hotel-w2v-%")
	b.ReportMetric(rows[0].Combined, "hotel-combined-%")
}

// BenchmarkFigure7_FuzzyVsHard regenerates the Appendix A comparison.
func BenchmarkFigure7_FuzzyVsHard(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	b.ResetTimer()
	var res harness.Figure7Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFigure7(hdb)
	}
	b.ReportMetric(float64(res.FuzzyOnly), "fuzzy-only-entities")
}

// BenchmarkFigure8_QuietRoom regenerates the Appendix D example.
func BenchmarkFigure8_QuietRoom(b *testing.B) {
	hotels, _, hdb, _ := benchFixtures(b)
	b.ResetTimer()
	var res harness.Figure8Result
	for i := 0; i < b.N; i++ {
		res = harness.RunFigure8(hotels, hdb)
	}
	b.ReportMetric(res.OpineQuietMass, "opine-quiet-mass")
	b.ReportMetric(res.IRQuietMass, "ir-quiet-mass")
}

// BenchmarkAppendixB_W2VIndex regenerates the substitution-index study.
func BenchmarkAppendixB_W2VIndex(b *testing.B) {
	hotels, _, hdb, _ := benchFixtures(b)
	b.ResetTimer()
	var res harness.AppendixBResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAppendixB(hotels, hdb)
	}
	b.ReportMetric(res.FastFraction*100, "fast-path-%")
	b.ReportMetric(res.SpeedupPct, "speedup-%")
}

// BenchmarkAppendixC_Pairing regenerates the pairing-model comparison.
func BenchmarkAppendixC_Pairing(b *testing.B) {
	var res harness.AppendixCResult
	for i := 0; i < b.N; i++ {
		res = harness.RunAppendixC(int64(21 + i))
	}
	b.ReportMetric(res.LearnedAcc, "learned-acc-%")
	b.ReportMetric(res.RuleAccuracy, "rule-acc-%")
}

// BenchmarkBuildDB measures full database construction (§4 pipeline) on
// the sequential path (BuildWorkers=1), the historical baseline.
func BenchmarkBuildDB(b *testing.B) {
	cfg := corpus.SmallConfig()
	d := corpus.GenerateHotels(cfg)
	c := core.DefaultConfig()
	c.BuildWorkers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Seed = int64(i + 1)
		if _, err := harness.BuildDB(d, c, 300, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBuild measures the same construction with the build
// worker pool at GOMAXPROCS; the ratio to BenchmarkBuildDB is the build
// parallelization speedup (results are byte-identical either way).
func BenchmarkParallelBuild(b *testing.B) {
	cfg := corpus.SmallConfig()
	d := corpus.GenerateHotels(cfg)
	c := core.DefaultConfig()
	c.BuildWorkers = 0 // GOMAXPROCS
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Seed = int64(i + 1)
		if _, err := harness.BuildDB(d, c, 300, 200); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotSave measures serializing a built small-corpus DB to
// the versioned snapshot artifact (the offline half of build-once /
// serve-many).
func BenchmarkSnapshotSave(b *testing.B) {
	cfg := corpus.SmallConfig()
	d := corpus.GenerateHotels(cfg)
	c := core.DefaultConfig()
	db, err := harness.BuildDB(d, c, 300, 200)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Save(path, db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad measures the serve-many cold start: loading a
// query-ready DB from the snapshot artifact. It builds the SAME corpus
// with the SAME config as BenchmarkParallelBuild, so the per-op ratio
// between the two is the snapshot cold-start speedup (the acceptance
// floor is 10x; cmd/benchall's "persistence" experiment tracks it).
func BenchmarkSnapshotLoad(b *testing.B) {
	cfg := corpus.SmallConfig()
	d := corpus.GenerateHotels(cfg)
	c := core.DefaultConfig()
	c.BuildWorkers = 0 // GOMAXPROCS, as in BenchmarkParallelBuild
	c.Seed = 1
	db, err := harness.BuildDB(d, c, 300, 200)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.snap")
	if _, err := snapshot.Save(path, db); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := snapshot.Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentQuery measures marker-path query throughput under
// GOMAXPROCS concurrent callers on one shared DB (caches warmed). Compare
// against BenchmarkQueryMarkers: at GOMAXPROCS≥4 the per-op time should
// drop well below the single-goroutine figure, since the read path shares
// only sharded read-locked caches.
func BenchmarkConcurrentQuery(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	opts := core.DefaultQueryOptions()
	preds := []string{"has really clean rooms", "has friendly staff"}
	if _, err := hdb.RankPredicates(preds, nil, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := hdb.RankPredicates(preds, nil, opts); err != nil {
				b.Error(err) // Fatal is not allowed off the benchmark goroutine
				return
			}
		}
	})
}

// BenchmarkConcurrentTopK is BenchmarkConcurrentQuery for the
// Threshold-Algorithm path (precomputed degree lists, warmed).
func BenchmarkConcurrentTopK(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	preds := []string{"has really clean rooms", "has friendly staff"}
	if _, _, err := hdb.TopKThreshold(preds, 10); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := hdb.TopKThreshold(preds, 10); err != nil {
				b.Error(err) // Fatal is not allowed off the benchmark goroutine
				return
			}
		}
	})
}

// BenchmarkQueryMarkers measures one subjective query on the marker path.
func BenchmarkQueryMarkers(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	opts := core.DefaultQueryOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hdb.RankPredicates([]string{"has really clean rooms", "has friendly staff"}, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryNoMarkers measures the same query on the scan path.
func BenchmarkQueryNoMarkers(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	opts := core.DefaultQueryOptions()
	opts.UseMarkers = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hdb.RankPredicates([]string{"has really clean rooms", "has friendly staff"}, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpret measures predicate interpretation without caching.
func BenchmarkInterpret(b *testing.B) {
	hotels, _, hdb, _ := benchFixtures(b)
	preds := hotels.Predicates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdb.InterpretW2VOnly(preds[i%len(preds)].Text)
	}
}

// BenchmarkBM25Search measures top-10 retrieval over the review index.
func BenchmarkBM25Search(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	query := textproc.Tokenize("really clean rooms and friendly staff")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdb.ReviewIndex.Search(query, 10)
	}
}

// BenchmarkSGNSTraining measures word2vec training on a small corpus.
func BenchmarkSGNSTraining(b *testing.B) {
	cfg := corpus.SmallConfig()
	cfg.HotelsLondon, cfg.HotelsAmsterdam, cfg.ReviewsPerHotel = 15, 5, 8
	d := corpus.GenerateHotels(cfg)
	stats := textproc.NewCorpusStats()
	var docs [][]string
	for _, rv := range d.Reviews {
		toks := textproc.Tokenize(rv.Text)
		docs = append(docs, toks)
		stats.AddDocument(toks)
	}
	tc := embedding.DefaultTrainConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := embedding.Train(docs, stats, tc, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstitutionLookup measures the Appendix B index fast path.
func BenchmarkSubstitutionLookup(b *testing.B) {
	hotels, _, hdb, _ := benchFixtures(b)
	if hdb.SubIndex == nil {
		b.Skip("substitution index disabled")
	}
	preds := hotels.Predicates
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hdb.SubIndex.Lookup(preds[i%len(preds)].Text)
	}
}

// BenchmarkFallbackScore measures the text-retrieval fallback degree.
func BenchmarkFallbackScore(b *testing.B) {
	_, _, hdb, _ := benchFixtures(b)
	ids := hdb.EntityIDs()
	query := textproc.Tokenize("good for motorcyclists")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ir.Sigmoid(hdb.EntityIndex.Score(ids[i%len(ids)], query), 4)
	}
}

// BenchmarkKDTreeNearest measures raw k-d tree search at interpreter scale.
func BenchmarkKDTreeNearest(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n, dim = 2000, 48
	labels := make([]string, n)
	points := make([]embedding.Vector, n)
	for i := range labels {
		labels[i] = string(rune('a'+i%26)) + string(rune('0'+i%10))
		v := make(embedding.Vector, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		points[i] = v
	}
	tree := kdtree.Build(labels, points)
	q := make(embedding.Vector, dim)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range q {
			q[d] = rng.NormFloat64()
		}
		tree.Nearest(q)
	}
}
