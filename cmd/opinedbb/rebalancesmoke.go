package main

// opinedbb -rebalance-smoke: the end-to-end drill of the fleet control
// plane's rebalancing path, runnable in CI:
//
//  1. build a small corpus and write a 4-shard fleet (snapshots +
//     manifest),
//  2. serve it behind the in-process router with a journal per shard and
//     ingest review deltas through the write path (every shard journals
//     every delta, fleet-ordered),
//  3. rebalance 4 → 2 and then 2 → 8 — merging snapshots + journals, no
//     rebuild — and after each step prove the routed fleet answers the
//     full harness query fingerprint byte-identically to the monolith
//     that applied the same deltas directly.

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
)

const rebalanceSmokeDeltas = 24

func runRebalanceSmoke(seed int64) {
	log.Printf("rebalance-smoke: building small hotel corpus...")
	d, db, err := harness.BuildDomain("hotel", true, seed, 0, 400, 300, true)
	if err != nil {
		log.Fatalf("rebalance-smoke: build: %v", err)
	}
	dir, err := os.MkdirTemp("", "opinedb-rebalance-smoke-*")
	if err != nil {
		log.Fatalf("rebalance-smoke: %v", err)
	}
	defer os.RemoveAll(dir)

	// 4-shard fleet on disk (the shared fleet-layout writer).
	manifestPath, err := harness.WriteFleet(db, dir, "hotel", 4, seed)
	if err != nil {
		log.Fatalf("rebalance-smoke: fleet: %v", err)
	}
	manifest, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		log.Fatalf("rebalance-smoke: manifest: %v", err)
	}

	// Serve the fleet in process with a journal per shard and route the
	// deltas through the fleet-ordered write path.
	entities := db.EntityIDs()
	var journals []*journal.Journal
	shards := make([]router.Shard, 4)
	for i := range manifest.Shard {
		sdb, _, err := snapshot.LoadVerifiedShard(manifestPath, manifest, i)
		if err != nil {
			log.Fatalf("rebalance-smoke: shard %d load: %v", i, err)
		}
		jdir := journal.Dir(filepath.Join(dir, manifest.Shard[i].Path))
		j, err := journal.Open(jdir, journal.Options{})
		if err != nil {
			log.Fatalf("rebalance-smoke: %v", err)
		}
		journals = append(journals, j)
		shards[i] = router.Shard{
			Backend: router.NewLocalBackend(fmt.Sprintf("shard%d", i), sdb, server.Options{
				Ingest: &server.IngestOptions{
					AcceptUnowned: true,
					JournalDir:    jdir,
					Append: func(rv core.ReviewData) (uint64, error) {
						return j.Append(journal.Review{
							ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
						})
					},
				},
			}),
			FirstEntity: manifest.Shard[i].FirstEntity,
			LastEntity:  manifest.Shard[i].LastEntity,
		}
	}
	rt, err := router.New(shards, router.Options{})
	if err != nil {
		log.Fatalf("rebalance-smoke: router: %v", err)
	}
	log.Printf("rebalance-smoke: ingesting %d deltas through the router...", rebalanceSmokeDeltas)
	var deltas []core.ReviewData
	for i := 0; i < rebalanceSmokeDeltas; i++ {
		rv := smokeReview(i, entities)
		deltas = append(deltas, core.ReviewData{ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text})
		res, err := rt.AddReview(context.Background(), server.ReviewRequest{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		})
		if err != nil {
			log.Fatalf("rebalance-smoke: write %s: %v", rv.ID, err)
		}
		if res.Partial {
			log.Fatalf("rebalance-smoke: write %s was partial: %+v", rv.ID, res.ShardErrors)
		}
	}
	for _, j := range journals {
		if err := j.Close(); err != nil {
			log.Fatalf("rebalance-smoke: %v", err)
		}
	}

	// The reference: the monolith that applied the same deltas in the
	// same order.
	for _, rv := range deltas {
		if err := db.ApplyReview(rv); err != nil {
			log.Fatalf("rebalance-smoke: reference apply: %v", err)
		}
	}
	wantFP, n := harness.QueryFingerprint(d, db)

	check := func(step string) {
		frt, _, err := router.FromManifest(manifestPath, router.ManifestOptions{})
		if err != nil {
			log.Fatalf("rebalance-smoke: %s: load fleet: %v", step, err)
		}
		gotFP, _ := harness.QueryFingerprint(d, frt.Engine(context.Background()))
		if gotFP != wantFP {
			log.Fatalf("rebalance-smoke: %s: fleet diverges from the enriched monolith over %d query-set entries", step, n)
		}
		log.Printf("rebalance-smoke: %s: byte-identical over %d query-set entries", step, n)
	}

	start := time.Now()
	if _, err := fleet.Rebalance(manifestPath, 2, fleet.RebalanceOptions{}); err != nil {
		log.Fatalf("rebalance-smoke: 4→2: %v", err)
	}
	to2 := time.Since(start)
	check("4→2")

	start = time.Now()
	if _, err := fleet.Rebalance(manifestPath, 8, fleet.RebalanceOptions{}); err != nil {
		log.Fatalf("rebalance-smoke: 2→8: %v", err)
	}
	to8 := time.Since(start)
	check("2→8")

	fmt.Printf("rebalance-smoke OK: 4→2 in %.2fs, 2→8 in %.2fs, %d query-set entries identical\n",
		to2.Seconds(), to8.Seconds(), n)
}
