package main

// Replication smoke drill (`opinedbb -replica-smoke`, `make
// replica-smoke`): prove the replicated read fleet serves through a
// replica failure without losing a request or a byte. Build a small
// R=2 fleet, kill one replica of one range outright, drive the mixed
// read/write load through the router's front door, and require (a)
// zero request errors — the balancer routes around the corpse and
// writes succeed partially-replicated — and (b) that the surviving
// fleet, queried with hedging enabled, stays byte-identical to the
// monolith enriched with the same fleet-ordered write sequence.

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/router"
)

// killableBackend fronts a live backend with a kill switch; dead, it
// fails every request like a connection refusal — the same shape a
// crashed opinedbd presents to an HTTP backend.
type killableBackend struct {
	inner router.Backend
	dead  atomic.Bool
}

func (b *killableBackend) Name() string { return b.inner.Name() }

func (b *killableBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	if b.dead.Load() {
		return 0, nil, fmt.Errorf("%s: connection refused (killed by replica-smoke)", b.inner.Name())
	}
	return b.inner.Do(ctx, method, target, body)
}

func runReplicaSmoke(seed int64) {
	dir, err := os.MkdirTemp("", "opinedb-replica-smoke-*")
	if err != nil {
		log.Fatalf("replica-smoke: %v", err)
	}
	defer os.RemoveAll(dir)

	log.Printf("replica-smoke: building small hotel corpus and an R=2 fleet...")
	var victim *killableBackend
	fl, err := harness.BuildLoadFleet(dir, harness.LoadFleetOptions{
		Shards:   3,
		Replicas: 2,
		Seed:     seed,
		WrapBackend: func(shard, replica int, b router.Backend) router.Backend {
			if shard == 0 && replica == 1 {
				victim = &killableBackend{inner: b}
				return victim
			}
			return b
		},
	})
	if err != nil {
		log.Fatalf("replica-smoke: fleet: %v", err)
	}

	// Kill replica 1 of range 0 before any traffic: every scatter leg the
	// balancer sends there fails instantly and must fail over to the
	// surviving replica, and every write's fan-out to it must degrade to
	// a partial (not an error).
	victim.dead.Store(true)
	log.Printf("replica-smoke: killed %s; driving the mixed load...", victim.Name())

	ctx := context.Background()
	res := harness.RunLoadMix(ctx, harness.HandlerLoadTarget(fl.Handler), fl.Dataset, harness.LoadOptions{
		Mix:         harness.DefaultLoadMix(),
		Concurrency: 4,
		Duration:    2 * time.Second,
		Seed:        seed,
	})
	if res.Err != "" {
		log.Fatalf("replica-smoke: load: %s", res.Err)
	}
	fmt.Print(harness.FormatLoad(res))
	if res.TotalErrors != 0 {
		log.Fatalf("replica-smoke: %d of %d requests failed with one replica down — the fleet must serve through a replica loss", res.TotalErrors, res.TotalOps)
	}

	// Byte-identity under failure: every surviving node journaled the
	// full fleet-ordered write sequence, so replaying any live journal
	// into the build-time monolith reproduces the state the fleet now
	// serves. Node 0 (shard 0, replica 0) is the dead node's own
	// set-mate — if anyone missed a write it would be this one.
	st, err := journal.ApplyAll(fl.DB, fl.JournalDirs[0])
	if err != nil {
		log.Fatalf("replica-smoke: replay: %v", err)
	}
	monoFP, n := harness.QueryFingerprint(fl.Dataset, fl.DB)
	routedFP, _ := harness.QueryFingerprint(fl.Dataset, fl.Router.Engine(ctx))
	if monoFP != routedFP {
		log.Fatalf("replica-smoke: degraded fleet diverges from the enriched monolith over %d query-set entries", n)
	}
	fired, wins := fl.Router.HedgeStats()
	fmt.Printf("replica-smoke OK: %d ops, 0 errors with one replica down; %d reviews replayed; %d query-set entries byte-identical (hedges fired %d, won %d)\n",
		res.TotalOps, st.Applied, n, fired, wins)
}
