package main

// Replication smoke drill (`opinedbb -replica-smoke`, `make
// replica-smoke`): prove the replicated read fleet serves through a
// replica-set membership change AND a replica failure without losing a
// request or a byte. Build a small R=2 fleet, drive the mixed
// read/write load through the router's front door, and mid-load (a)
// JOIN a third replica on the hot range — snapshot + journal-suffix
// catch-up, admitted under the write mutex with the byte-identity
// proof — then (b) KILL one of the range's original replicas outright.
// Require zero request errors through both transitions, the joiner's
// journal hash-identical to a surviving original's, and the fleet
// byte-identical to the monolith enriched with the same fleet-ordered
// write sequence.

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/router"
)

// killableBackend fronts a live backend with a kill switch; dead, it
// fails every request like a connection refusal — the same shape a
// crashed opinedbd presents to an HTTP backend.
type killableBackend struct {
	inner router.Backend
	dead  atomic.Bool
}

func (b *killableBackend) Name() string { return b.inner.Name() }

func (b *killableBackend) Do(ctx context.Context, method, target string, body []byte) (int, []byte, error) {
	if b.dead.Load() {
		return 0, nil, fmt.Errorf("%s: connection refused (killed by replica-smoke)", b.inner.Name())
	}
	return b.inner.Do(ctx, method, target, body)
}

func runReplicaSmoke(seed int64) {
	dir, err := os.MkdirTemp("", "opinedb-replica-smoke-*")
	if err != nil {
		log.Fatalf("replica-smoke: %v", err)
	}
	defer os.RemoveAll(dir)

	log.Printf("replica-smoke: building small hotel corpus and an R=2 fleet...")
	var victim *killableBackend
	fl, err := harness.BuildLoadFleet(dir, harness.LoadFleetOptions{
		Shards:   3,
		Replicas: 2,
		Seed:     seed,
		WrapBackend: func(shard, replica int, b router.Backend) router.Backend {
			if shard == 0 && replica == 1 {
				victim = &killableBackend{inner: b}
				return victim
			}
			return b
		},
	})
	if err != nil {
		log.Fatalf("replica-smoke: fleet: %v", err)
	}

	// Two mid-load transitions on the hot range: at ~1/4 of the run a
	// third replica joins (catch-up + admission under the write mutex —
	// writes queue behind the admission, they never pause), and at ~2/3 an
	// ORIGINAL replica dies. Between the kill and the end of the run the
	// joiner is load-bearing: it and replica 0 are the range's only live
	// nodes.
	ctx := context.Background()
	var (
		wg      sync.WaitGroup
		admit   *router.AdmitReport
		joinErr error
	)
	wg.Add(2)
	time.AfterFunc(700*time.Millisecond, func() {
		defer wg.Done()
		joiner, err := fl.NewJoinerBackend(0)
		if err != nil {
			joinErr = err
			return
		}
		log.Printf("replica-smoke: joining %s to range 0 mid-load...", joiner.Name())
		admit, joinErr = fl.Router.AdmitReplica(ctx, 0, joiner)
	})
	time.AfterFunc(1900*time.Millisecond, func() {
		defer wg.Done()
		victim.dead.Store(true)
		log.Printf("replica-smoke: killed %s mid-load...", victim.Name())
	})

	res := harness.RunLoadMix(ctx, harness.HandlerLoadTarget(fl.Handler), fl.Dataset, harness.LoadOptions{
		Mix:         harness.DefaultLoadMix(),
		Concurrency: 4,
		Duration:    3 * time.Second,
		Seed:        seed,
	})
	wg.Wait()
	if res.Err != "" {
		log.Fatalf("replica-smoke: load: %s", res.Err)
	}
	fmt.Print(harness.FormatLoad(res))
	if joinErr != nil {
		log.Fatalf("replica-smoke: mid-load join failed: %v", joinErr)
	}
	if admit == nil || admit.Final == nil || !admit.Final.Identical {
		log.Fatalf("replica-smoke: join admitted without the byte-identity proof: %+v", admit)
	}
	log.Printf("replica-smoke: joined shard0 replica %d (backfilled %d records, fleet now %d nodes)",
		admit.Replica, admit.Presync.Backfilled+admit.Final.Backfilled, admit.Nodes)
	if res.TotalErrors != 0 {
		log.Fatalf("replica-smoke: %d of %d requests failed across a join and a kill — the fleet must serve through both", res.TotalErrors, res.TotalOps)
	}

	// The joiner must have kept pace after admission too: its journal's
	// full hash chain must match a surviving original's, record for
	// record, through the end of the run.
	origHash, origSeq := journalChain(fl.JournalDirs[0][0])
	joinHash, joinSeq := journalChain(fl.JournalDirs[0][2])
	if origSeq != joinSeq || origHash != joinHash {
		log.Fatalf("replica-smoke: joiner journal (seq %d, %s) diverges from original (seq %d, %s)",
			joinSeq, joinHash, origSeq, origHash)
	}

	// Byte-identity through both transitions: every surviving node
	// journaled the full fleet-ordered write sequence, so replaying any
	// live journal into the build-time monolith reproduces the state the
	// fleet now serves. Node (0,0) is the dead node's own set-mate — if
	// anyone missed a write it would be this one.
	st, err := journal.ApplyAll(fl.DB, fl.JournalDirs[0][0])
	if err != nil {
		log.Fatalf("replica-smoke: replay: %v", err)
	}
	monoFP, n := harness.QueryFingerprint(fl.Dataset, fl.DB)
	routedFP, _ := harness.QueryFingerprint(fl.Dataset, fl.Router.Engine(ctx))
	if monoFP != routedFP {
		log.Fatalf("replica-smoke: fleet diverges from the enriched monolith over %d query-set entries", n)
	}
	fired, wins := fl.Router.HedgeStats()
	fmt.Printf("replica-smoke OK: %d ops, 0 errors through a mid-load join and a replica kill; joiner hash-identical at seq %d; %d reviews replayed; %d query-set entries byte-identical (hedges fired %d, won %d)\n",
		res.TotalOps, joinSeq, st.Applied, n, fired, wins)
}

// journalChain reads a journal directory's full prefix-hash chain.
func journalChain(dir string) (hash string, seq uint64) {
	p, err := journal.NewPrefixHashes(dir)
	if err != nil {
		log.Fatalf("replica-smoke: hash chain for %s: %v", dir, err)
	}
	return p.Last()
}
