package main

// opinedbb -compact: fold a review journal back into a fresh snapshot.
// Compaction is the offline half of the incremental-enrichment loop —
// live ingestion appends deltas next to the snapshot; compaction rebases
// the artifact so the journal stays short and cold starts pay one load
// instead of a long replay.

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/journal"
)

// runCompact dispatches on the artifact kind: a shard manifest compacts
// the whole fleet in place (digest refresh included); a snapshot compacts
// to itself, or to -o when the operator set one.
func runCompact(target, out string, outSet bool) {
	start := time.Now()
	if strings.HasSuffix(target, ".json") {
		m, shards, err := journal.CompactManifest(target)
		if err != nil {
			log.Fatalf("compact %s: %v", target, err)
		}
		if len(shards) == 0 {
			fmt.Printf("compact OK: %s has no journaled deltas; nothing to fold\n", target)
			return
		}
		for _, s := range shards {
			log.Printf("shard %d: folded %d reviews (%d already in the snapshot), new digest %s",
				s.Index, s.Applied, s.Skipped, s.Digest[:12])
		}
		fmt.Printf("compact OK: %d of %d shards folded, manifest digests refreshed (%.2fs)\n",
			len(shards), m.Shards, time.Since(start).Seconds())
		return
	}
	dst := target
	if outSet {
		dst = out
	}
	meta, st, err := journal.Compact(target, dst)
	if err != nil {
		log.Fatalf("compact %s: %v", target, err)
	}
	if st.TailErr != nil {
		log.Printf("journal tail damage skipped: %d bytes (%v)", st.DroppedBytes, st.TailErr)
	}
	fmt.Printf("compact OK: folded %d reviews (%d already in the snapshot) into %s: %.2f MB, digest %s (%.2fs)\n",
		st.Applied, st.Skipped, dst, float64(meta.FileBytes)/(1<<20), meta.SHA256[:12], time.Since(start).Seconds())
}
