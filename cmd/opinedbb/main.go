// Command opinedbb is the OpineDB builder: the offline half of the
// build-once / serve-many split. It generates (or will later ingest) a
// corpus, runs the full §4 construction pipeline with the parallel build
// workers, and writes the result as a versioned snapshot artifact that
// any number of opinedbd servers can load in milliseconds.
//
// With -shards N it additionally partitions the entity space into N
// contiguous ranges and writes one snapshot per shard plus a checksummed
// manifest; opinedbd then serves a single shard (-shard-manifest
// -shard-index) or routes over the fleet (-router).
//
// Examples:
//
//	opinedbb -domain hotel -o hotel.snap
//	opinedbb -small -verify -o /tmp/smoke.snap     # build → save → load → query smoke test
//	opinedbd -snapshot hotel.snap                  # serve it
//	opinedbb -domain hotel -shards 4 -o hotel.snap # hotel-shard0..3.snap + hotel.manifest.json
//	opinedbd -shard-manifest hotel.manifest.json -shard-index 2
//	opinedbd -router hotel.manifest.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/router"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// tracer backs the builder's /debug/traces when -debug-addr is set; the
// -verify scatter check wires it through the throwaway router so even a
// batch run's queries are traceable.
var tracer = trace.New(trace.Options{})

func main() {
	out := flag.String("o", "opinedb.snap", "snapshot output path; with -shards > 1 the base name for <base>-shardK.snap and <base>.manifest.json")
	domain := flag.String("domain", "hotel", "corpus domain: hotel or restaurant")
	seed := flag.Int64("seed", 1, "corpus and build seed")
	small := flag.Bool("small", false, "build a small corpus (faster)")
	workers := flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS)")
	tagged := flag.Int("tagged", 800, "gold sentences for extractor training")
	labels := flag.Int("labels", 800, "membership-function training labels")
	subindex := flag.Bool("subindex", true, "build the Appendix B substitution index into the snapshot")
	shards := flag.Int("shards", 1, "partition the entity space into N per-shard snapshots plus a manifest (1 = monolithic)")
	replicas := flag.String("replicas", "", `with -shards > 1: record the replica-set shape in the manifest — "3" for a uniform R, or "0=3,1=1" per-range pairs (unlisted ranges default to 1) so a hot range runs R=3 while cold ranges stay single-replica (opinedbd -router serves each range accordingly)`)
	verify := flag.Bool("verify", false, "after writing, reload the artifact(s) and check query equivalence against the in-memory build")
	compact := flag.String("compact", "", "fold a review journal back into a fresh snapshot instead of building: pass a snapshot path (compacted in place, or to -o when -o is set) or a shard manifest (*.json: every shard journal is folded and the manifest digests refreshed)")
	journalSmoke := flag.Bool("journal-smoke", false, "crash-recovery smoke test: build → snapshot → ingest from a child process → SIGKILL it mid-write → reload snapshot+journal → fingerprint check against direct application")
	rebalance := flag.Int("rebalance", 0, "rebalance the stopped fleet described by -manifest to N shards without a rebuild: merge the loaded shards (snapshots + journals), re-partition, and commit a fresh snapshot set + manifest crash-safely")
	manifestFlag := flag.String("manifest", "", "shard manifest path for -rebalance")
	rebalanceSmoke := flag.Bool("rebalance-smoke", false, "rebalancing smoke test: build a 4-shard fleet → ingest through the router → rebalance to 2 and to 8 → fingerprint check against the enriched monolith")
	replicaSmoke := flag.Bool("replica-smoke", false, "replication smoke test: build an R=2 fleet → run the mixed load → join a third replica on the hot range mid-load → kill an original replica mid-load → assert zero request errors, joiner journal identity, and fingerprint byte-identity against the enriched monolith")
	debugAddr := flag.String("debug-addr", "", "serve the debug surface (net/http/pprof under /debug/pprof/, traces under /debug/traces) on this address for the duration of the run; empty disables")
	flag.Parse()

	if *debugAddr != "" {
		go func() {
			log.Printf("debug surface listening on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, trace.DebugMux(tracer)); err != nil {
				log.Printf("debug surface: %v", err)
			}
		}()
	}

	if os.Getenv(smokeChildEnv) != "" {
		journalSmokeChild()
		return
	}
	if *compact != "" {
		outSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "o" {
				outSet = true
			}
		})
		runCompact(*compact, *out, outSet)
		return
	}
	if *journalSmoke {
		runJournalSmoke(*domain, *seed, *out)
		return
	}
	if *rebalance > 0 {
		runRebalance(*manifestFlag, *rebalance)
		return
	}
	if *rebalanceSmoke {
		runRebalanceSmoke(*seed)
		return
	}
	if *replicaSmoke {
		runReplicaSmoke(*seed)
		return
	}

	log.Printf("generating %s corpus and building subjective database...", *domain)
	start := time.Now()
	d, db, err := harness.BuildDomain(*domain, *small, *seed, *workers, *tagged, *labels, *subindex)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	buildSecs := time.Since(start).Seconds()
	log.Printf("built: %d entities, %d reviews, %d extractions, %d subjective attributes (%.1fs)",
		len(d.Entities), len(d.Reviews), len(db.Extractions), len(db.Attrs), buildSecs)

	if *shards > 1 {
		writeSharded(d, db, *out, *shards, *replicas, *seed, buildSecs, *verify)
		os.Exit(0)
	}

	start = time.Now()
	meta, err := snapshot.Save(*out, db)
	if err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("wrote %s: %.2f MB, format v%d (%.2fs)",
		*out, float64(meta.FileBytes)/(1<<20), meta.FormatVersion, time.Since(start).Seconds())
	for _, s := range meta.Sections {
		log.Printf("  section %-12s %9d bytes", s.Name, s.Bytes)
	}

	if *verify {
		loaded, loadMeta, err := snapshot.Load(*out)
		if err != nil {
			log.Fatalf("verify: load: %v", err)
		}
		builtFP, n := harness.QueryFingerprint(d, db)
		loadedFP, _ := harness.QueryFingerprint(d, loaded)
		if builtFP != loadedFP {
			log.Fatalf("verify: loaded snapshot diverges from the in-memory build over %d query-set entries", n)
		}
		res, err := loaded.Query(`SELECT * FROM Entities WHERE "has really clean rooms" LIMIT 3`)
		if err != nil {
			log.Fatalf("verify: query on loaded snapshot: %v", err)
		}
		log.Printf("verify: loaded in %.1fms, byte-identical over %d query-set entries; sample query → %d rows (%s)",
			float64(loadMeta.LoadDuration.Microseconds())/1000, n, len(res.Rows), res.Rewritten)
		fmt.Printf("snapshot-smoke OK: build %.1fs → load %.1fms (%.0fx cold-start win)\n",
			buildSecs, float64(loadMeta.LoadDuration.Microseconds())/1000,
			buildSecs/loadMeta.LoadDuration.Seconds())
	}
	os.Exit(0)
}

// shardBase strips the output path's extension: hotel.snap → hotel.
func shardBase(out string) string { return strings.TrimSuffix(out, filepath.Ext(out)) }

// writeSharded partitions the built database, writes one snapshot per
// shard plus the checksummed manifest (recording the replica-set size
// when R > 1 — replicas serve the same artifacts, so only the manifest
// changes shape), and optionally verifies that a router over the
// reloaded shards answers byte-identically to the in-memory monolith.
func writeSharded(d *corpus.Dataset, db *core.DB, out string, shards int, replicaSpec string, seed int64, buildSecs float64, verify bool) {
	base := shardBase(out)
	shardDBs, parts, err := db.Shards(shards)
	if err != nil {
		log.Fatalf("shard: %v", err)
	}
	perRange, uniform, err := snapshot.ParseReplicaSpec(replicaSpec, shards)
	if err != nil {
		log.Fatalf("shard: -replicas: %v", err)
	}
	if uniform == 1 {
		uniform = 0 // canonical single-replica manifest: field absent
	}
	manifest := &snapshot.Manifest{
		FormatVersion:    snapshot.FormatVersion,
		Name:             db.Name,
		BuildSeed:        seed,
		Shards:           shards,
		Replicas:         uniform,
		ReplicasPerRange: perRange,
		TotalEntities:    len(db.EntityIDs()),
		CreatedUnix:      time.Now().Unix(),
	}
	start := time.Now()
	for i, shardDB := range shardDBs {
		ids := parts[i]
		path := fmt.Sprintf("%s-shard%d.snap", base, i)
		meta, err := snapshot.SaveShard(path, shardDB, &snapshot.ShardMeta{
			Index:         i,
			Count:         shards,
			Entities:      len(ids),
			TotalEntities: len(db.EntityIDs()),
			FirstEntity:   ids[0],
			LastEntity:    ids[len(ids)-1],
		})
		if err != nil {
			log.Fatalf("shard %d: save: %v", i, err)
		}
		// The digest was computed while the snapshot streamed out
		// (snapshot.SaveShard hashes through io.MultiWriter), so the
		// builder never re-reads the artifact it just wrote.
		manifest.Shard = append(manifest.Shard, snapshot.ManifestShard{
			Index:          i,
			Path:           filepath.Base(path),
			Entities:       len(ids),
			FirstEntity:    ids[0],
			LastEntity:     ids[len(ids)-1],
			SnapshotSHA256: meta.SHA256,
			SnapshotBytes:  meta.FileBytes,
		})
		log.Printf("wrote %s: %.2f MB, entities [%s .. %s] (%d)",
			path, float64(meta.FileBytes)/(1<<20), ids[0], ids[len(ids)-1], len(ids))
	}
	manifestPath := base + ".manifest.json"
	if err := snapshot.WriteManifest(manifestPath, manifest); err != nil {
		log.Fatalf("manifest: %v", err)
	}
	nodes := 0
	for i := 0; i < shards; i++ {
		nodes += manifest.ReplicaCount(i)
	}
	log.Printf("wrote %s: %d shards, %d serving nodes, %d entities (%.2fs)",
		manifestPath, shards, nodes, manifest.TotalEntities, time.Since(start).Seconds())

	if verify {
		// FromManifest honors the manifest's replica count, so an R>1 build
		// verifies the replicated fleet it describes.
		rt, _, err := router.FromManifest(manifestPath, router.ManifestOptions{
			Options: router.Options{Trace: tracer},
		})
		if err != nil {
			log.Fatalf("verify: %v", err)
		}
		builtFP, n := harness.QueryFingerprint(d, db)
		routedFP, _ := harness.QueryFingerprint(d, rt.Engine(context.Background()))
		if builtFP != routedFP {
			log.Fatalf("verify: sharded fleet diverges from the in-memory build over %d query-set entries", n)
		}
		log.Printf("verify: %d-shard fleet (%d nodes) byte-identical to the monolith over %d query-set entries", shards, rt.NumNodes(), n)
		fmt.Printf("shard-smoke OK: %d shards, %d query-set entries identical (build %.1fs)\n", shards, n, buildSecs)
	}
}
