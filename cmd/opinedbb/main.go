// Command opinedbb is the OpineDB builder: the offline half of the
// build-once / serve-many split. It generates (or will later ingest) a
// corpus, runs the full §4 construction pipeline with the parallel build
// workers, and writes the result as a versioned snapshot artifact that
// any number of opinedbd servers can load in milliseconds.
//
// Examples:
//
//	opinedbb -domain hotel -o hotel.snap
//	opinedbb -small -verify -o /tmp/smoke.snap   # build → save → load → query smoke test
//	opinedbd -snapshot hotel.snap                # serve it
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/harness"
	"repro/internal/snapshot"
)

func main() {
	out := flag.String("o", "opinedb.snap", "snapshot output path")
	domain := flag.String("domain", "hotel", "corpus domain: hotel or restaurant")
	seed := flag.Int64("seed", 1, "corpus and build seed")
	small := flag.Bool("small", false, "build a small corpus (faster)")
	workers := flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS)")
	tagged := flag.Int("tagged", 800, "gold sentences for extractor training")
	labels := flag.Int("labels", 800, "membership-function training labels")
	subindex := flag.Bool("subindex", true, "build the Appendix B substitution index into the snapshot")
	verify := flag.Bool("verify", false, "after writing, reload the snapshot and check query equivalence against the in-memory build")
	flag.Parse()

	log.Printf("generating %s corpus and building subjective database...", *domain)
	start := time.Now()
	d, db, err := harness.BuildDomain(*domain, *small, *seed, *workers, *tagged, *labels, *subindex)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	buildSecs := time.Since(start).Seconds()
	log.Printf("built: %d entities, %d reviews, %d extractions, %d subjective attributes (%.1fs)",
		len(d.Entities), len(d.Reviews), len(db.Extractions), len(db.Attrs), buildSecs)

	start = time.Now()
	meta, err := snapshot.Save(*out, db)
	if err != nil {
		log.Fatalf("save: %v", err)
	}
	log.Printf("wrote %s: %.2f MB, format v%d (%.2fs)",
		*out, float64(meta.FileBytes)/(1<<20), meta.FormatVersion, time.Since(start).Seconds())
	for _, s := range meta.Sections {
		log.Printf("  section %-12s %9d bytes", s.Name, s.Bytes)
	}

	if *verify {
		loaded, loadMeta, err := snapshot.Load(*out)
		if err != nil {
			log.Fatalf("verify: load: %v", err)
		}
		builtFP, n := harness.QueryFingerprint(d, db)
		loadedFP, _ := harness.QueryFingerprint(d, loaded)
		if builtFP != loadedFP {
			log.Fatalf("verify: loaded snapshot diverges from the in-memory build over %d query-set entries", n)
		}
		res, err := loaded.Query(`SELECT * FROM Entities WHERE "has really clean rooms" LIMIT 3`)
		if err != nil {
			log.Fatalf("verify: query on loaded snapshot: %v", err)
		}
		log.Printf("verify: loaded in %.1fms, byte-identical over %d query-set entries; sample query → %d rows (%s)",
			float64(loadMeta.LoadDuration.Microseconds())/1000, n, len(res.Rows), res.Rewritten)
		fmt.Printf("snapshot-smoke OK: build %.1fs → load %.1fms (%.0fx cold-start win)\n",
			buildSecs, float64(loadMeta.LoadDuration.Microseconds())/1000,
			buildSecs/loadMeta.LoadDuration.Seconds())
	}
	os.Exit(0)
}
