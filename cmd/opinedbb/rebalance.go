package main

// The -rebalance subcommand: online N→M shard rebalancing of a stopped
// fleet (internal/fleet). The shards' snapshots and journals are merged
// back into the monolith-equivalent database, re-partitioned, and
// committed as a fresh snapshot set + manifest — no corpus rebuild, and
// crash-safe (re-running after a crash converges).

import (
	"fmt"
	"log"
	"time"

	"repro/internal/fleet"
)

func runRebalance(manifestPath string, m int) {
	if manifestPath == "" {
		log.Fatalf("rebalance: -manifest is required (the fleet's shard manifest)")
	}
	start := time.Now()
	report, err := fleet.Rebalance(manifestPath, m, fleet.RebalanceOptions{})
	if err != nil {
		log.Fatalf("rebalance: %v", err)
	}
	log.Printf("rebalanced %s: %d → %d shards, %d entities, %d journal records folded (%.2fs)",
		manifestPath, report.FromShards, report.ToShards, report.Entities,
		report.ReplayedRecords, time.Since(start).Seconds())
	for _, s := range report.Manifest.Shard {
		log.Printf("  shard %d: %s, entities [%s .. %s] (%d)",
			s.Index, s.Path, s.FirstEntity, s.LastEntity, s.Entities)
	}
	fmt.Printf("rebalance OK: %d → %d shards in %.2fs\n",
		report.FromShards, report.ToShards, time.Since(start).Seconds())
}
