package main

// opinedbb -journal-smoke: the end-to-end crash drill of the incremental
// enrichment stack, runnable in CI. The parent builds a small corpus,
// writes a snapshot, then re-executes itself as an ingestion worker that
// appends review deltas to the journal as fast as it can. The parent
// SIGKILLs the worker mid-write — the real crash, not a simulation — and
// then proves the recovery contract:
//
//  1. snapshot + journal load with no error (a torn tail is truncated,
//     never served),
//  2. every acknowledged append survived as a contiguous prefix,
//  3. the replayed database answers the full harness query fingerprint
//     byte-identically to a fresh load that applied the same reviews
//     directly (replay-vs-rebuild), and
//  4. compacting the pair into a fresh snapshot preserves the fingerprint.

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/snapshot"
)

// smokeChildEnv carries the journal directory to the re-executed
// ingestion worker; its presence selects child mode in main.
const smokeChildEnv = "OPINEDBB_JOURNAL_SMOKE_DIR"

// smokeEntitiesEnv carries the entity-id file to the worker.
const smokeEntitiesEnv = "OPINEDBB_JOURNAL_SMOKE_ENTITIES"

// smokeTexts cycle through the worker's generated reviews; they use
// schema vocabulary so extraction materializes real summary updates.
var smokeTexts = []string{
	"The room was very clean and the staff was friendly.",
	"Spotless bathroom but the service was quite slow.",
	"The bed was comfortable. The breakfast was excellent.",
	"Noisy room and the wifi was terrible.",
	"The staff was helpful and the location was great.",
	"Dirty carpet. The room smelled bad and the shower was cold.",
}

// smokeReview builds the worker's i-th deterministic review delta.
func smokeReview(i int, entities []string) journal.Review {
	return journal.Review{
		ID:       fmt.Sprintf("smoke-%06d", i),
		EntityID: entities[i%len(entities)],
		Reviewer: fmt.Sprintf("smoker%02d", i%7),
		Day:      4000 + i,
		Text:     smokeTexts[i%len(smokeTexts)],
	}
}

// journalSmokeChild is the ingestion worker: append deltas forever (small
// segments, batched fsync — the adversarial configuration) and report
// each acknowledged sequence number on stdout until the parent kills it.
func journalSmokeChild() {
	dir := os.Getenv(smokeChildEnv)
	raw, err := os.ReadFile(os.Getenv(smokeEntitiesEnv))
	if err != nil {
		log.Fatalf("smoke child: %v", err)
	}
	entities := strings.Fields(string(raw))
	j, err := journal.Open(dir, journal.Options{SyncEvery: 4, SegmentMaxBytes: 8 << 10})
	if err != nil {
		log.Fatalf("smoke child: %v", err)
	}
	w := bufio.NewWriter(os.Stdout)
	for i := 0; ; i++ {
		seq, err := j.Append(smokeReview(i, entities))
		if err != nil {
			log.Fatalf("smoke child: append: %v", err)
		}
		fmt.Fprintf(w, "acked %d\n", seq)
		w.Flush()
	}
}

// runJournalSmoke is the parent drill; see the file comment.
func runJournalSmoke(domain string, seed int64, out string) {
	log.Printf("journal-smoke: building small %s corpus...", domain)
	d, db, err := harness.BuildDomain(domain, true, seed, 0, 400, 300, true)
	if err != nil {
		log.Fatalf("journal-smoke: build: %v", err)
	}
	if _, err := snapshot.Save(out, db); err != nil {
		log.Fatalf("journal-smoke: save: %v", err)
	}
	dir := journal.Dir(out)
	if err := os.RemoveAll(dir); err != nil {
		log.Fatalf("journal-smoke: %v", err)
	}

	entities := db.EntityIDs()
	if len(entities) > 50 {
		entities = entities[:50]
	}
	entFile, err := os.CreateTemp("", "opinedb-smoke-entities-*")
	if err != nil {
		log.Fatalf("journal-smoke: %v", err)
	}
	defer os.Remove(entFile.Name())
	fmt.Fprintln(entFile, strings.Join(entities, "\n"))
	entFile.Close()

	// Re-execute this binary as the ingestion worker and kill it cold
	// after it has acknowledged a batch of appends.
	exe, err := os.Executable()
	if err != nil {
		log.Fatalf("journal-smoke: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), smokeChildEnv+"="+dir, smokeEntitiesEnv+"="+entFile.Name())
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		log.Fatalf("journal-smoke: %v", err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatalf("journal-smoke: start worker: %v", err)
	}
	var lastAcked uint64
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if seqs, ok := strings.CutPrefix(line, "acked "); ok {
			if seq, err := strconv.ParseUint(seqs, 10, 64); err == nil && seq > lastAcked {
				lastAcked = seq
			}
		}
		if lastAcked >= 40 {
			break
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL, mid-write
		log.Fatalf("journal-smoke: kill worker: %v", err)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	_ = cmd.Wait()
	if lastAcked < 40 {
		log.Fatalf("journal-smoke: worker died after only %d acknowledged appends", lastAcked)
	}
	log.Printf("journal-smoke: SIGKILLed the ingestion worker after seq %d", lastAcked)

	// 1–2: recovery — the journal replays cleanly and every acknowledged
	// append survived as a contiguous prefix.
	var recovered []journal.Review
	stats, err := journal.Replay(dir, func(seq uint64, rv journal.Review) error {
		recovered = append(recovered, rv)
		return nil
	})
	if err != nil {
		log.Fatalf("journal-smoke: replay after crash: %v", err)
	}
	if stats.TailErr != nil {
		log.Printf("journal-smoke: torn tail dropped cleanly: %d bytes (%v)", stats.DroppedBytes, stats.TailErr)
	}
	// An append is acknowledged only after its bytes reached the OS, and
	// a process SIGKILL cannot unwrite them — only the record the worker
	// was mid-append on may be torn.
	if uint64(len(recovered)) < lastAcked {
		log.Fatalf("journal-smoke: recovered %d records, but %d were acknowledged", len(recovered), lastAcked)
	}
	for i, rv := range recovered {
		if want := fmt.Sprintf("smoke-%06d", i); rv.ID != want {
			log.Fatalf("journal-smoke: recovered record %d is %s, want %s (not a contiguous prefix)", i, rv.ID, want)
		}
	}

	// 3: replay-vs-rebuild — snapshot+journal must answer byte-identically
	// to a fresh load that applies the same deltas directly.
	replayed, _, applyStats, err := journal.LoadWithJournal(out)
	if err != nil {
		log.Fatalf("journal-smoke: load with journal: %v", err)
	}
	if applyStats.Applied != len(recovered) {
		log.Fatalf("journal-smoke: replay applied %d of %d recovered reviews", applyStats.Applied, len(recovered))
	}
	reference, _, err := snapshot.Load(out)
	if err != nil {
		log.Fatalf("journal-smoke: reference load: %v", err)
	}
	for _, rv := range recovered {
		if err := reference.ApplyReview(core.ReviewData{
			ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer, Day: rv.Day, Text: rv.Text,
		}); err != nil {
			log.Fatalf("journal-smoke: reference apply: %v", err)
		}
	}
	replayFP, n := harness.QueryFingerprint(d, replayed)
	referenceFP, _ := harness.QueryFingerprint(d, reference)
	if replayFP != referenceFP {
		log.Fatalf("journal-smoke: snapshot+journal replay diverges from direct application over %d query-set entries", n)
	}

	// 4: compaction preserves the fingerprint.
	compacted := out + ".compacted"
	if _, _, err := journal.Compact(out, compacted); err != nil {
		log.Fatalf("journal-smoke: compact: %v", err)
	}
	defer os.Remove(compacted)
	folded, _, foldStats, err := journal.LoadWithJournal(compacted)
	if err != nil {
		log.Fatalf("journal-smoke: load compacted: %v", err)
	}
	if foldStats.Records != 0 {
		log.Fatalf("journal-smoke: compacted artifact should start with an empty journal, replayed %d", foldStats.Records)
	}
	foldedFP, _ := harness.QueryFingerprint(d, folded)
	if foldedFP != replayFP {
		log.Fatalf("journal-smoke: compacted snapshot diverges from replayed state over %d query-set entries", n)
	}

	fmt.Printf("journal-smoke OK: crash-killed after %d acked appends, recovered %d (torn tail: %d bytes), replay and compaction byte-identical over %d query-set entries\n",
		lastAcked, len(recovered), stats.DroppedBytes, n)
}
