// Command opinedbload drives configurable mixed read/write traffic at
// an OpineDB routed fleet and reports per-operation SLO percentiles.
//
// Two modes:
//
//   - Against a live fleet: `opinedbload -addr http://127.0.0.1:8080`.
//     The request vocabulary (predicates and entity ids) is regenerated
//     from -seed, so the target should be a fleet built from the same
//     small corpus and seed (as `opinedbd`'s defaults and the smoke
//     targets do).
//
//   - Self-contained smoke: `opinedbload -smoke` builds a journaled
//     in-process fleet, serves it on a loopback listener, runs the mix
//     over real TCP, and exits non-zero unless the run completed with
//     zero request errors and non-zero latency percentiles. This is
//     what `make load-smoke` and CI run. Adding `-fingerprint` replays
//     the fleet's journal into the pre-fleet monolith after the run and
//     also fails unless the routed fleet answers the full query set
//     byte-identically — `make write-smoke` drives a write-heavy mix
//     through this gate to prove group commit changes scheduling, not
//     state.
//
// The mix is weights, not percentages: `-mix query=4,topk=3,interpret=2,reviews=1`.
//
// Smoke-mode fault injection: `-replicas 2 -slow-replica 25ms` serves
// every range twice and degrades one backend, making the hedged-scatter
// tail win reproducible outside benchall (A/B it with `-no-hedge`).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/trace"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running fleet front door (e.g. http://127.0.0.1:8080)")
	smoke := flag.Bool("smoke", false, "build an in-process fleet on a loopback listener and load it (self-check mode)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive traffic")
	concurrency := flag.Int("concurrency", 8, "number of concurrent workers")
	mixSpec := flag.String("mix", "query=4,topk=3,interpret=2,reviews=1", "operation weights")
	seed := flag.Int64("seed", 1, "seed for corpus vocabulary and request sequence")
	shards := flag.Int("shards", 4, "fleet size in -smoke mode")
	replicas := flag.Int("replicas", 1, "replica-set size per shard range in -smoke mode")
	slowReplica := flag.Duration("slow-replica", 0, "-smoke mode fault injection: add this per-request delay in front of one backend (the last replica of shard 0), so a degraded replica's tail — and hedging's answer to it — is reproducible on demand")
	noHedge := flag.Bool("no-hedge", false, "-smoke mode: disable hedged scatter legs (the control arm of the -slow-replica A/B)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "-smoke mode: fixed hedge delay (0 = adapt to each shard's scatter p95)")
	k := flag.Int("k", 10, "result size for query/topk operations")
	fingerprint := flag.Bool("fingerprint", false, "-smoke mode: after the run, replay one node's journal into the pre-fleet monolith and require the routed fleet to answer the full query set byte-identically (write-path identity gate)")
	slowMS := flag.Float64("slow-ms", 0, "after the run, print the retained traces slower than this many milliseconds — from the fleet's /debug/traces in -addr mode, from the in-process collector in -smoke mode (where it also lowers the tail-sampling retention cutoff to match)")
	traceSmoke := flag.Bool("trace-smoke", false, "-smoke mode tracing gate: requires -replicas >= 2 and -slow-replica, and fails unless the trace store holds a hedge-won request whose scatter legs carry shard/replica attribution and whose server-side spans joined the same trace")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of the SLO table")
	flag.Parse()

	if (*addr == "") == !*smoke {
		log.Fatal("opinedbload: exactly one of -addr or -smoke is required")
	}
	if *fingerprint && !*smoke {
		log.Fatal("opinedbload: -fingerprint requires -smoke (it replays the in-process fleet's journals)")
	}
	if *traceSmoke {
		if !*smoke {
			log.Fatal("opinedbload: -trace-smoke requires -smoke")
		}
		if *replicas < 2 || *slowReplica <= 0 || *noHedge {
			log.Fatal("opinedbload: -trace-smoke needs a hedge-win to assert on: use -replicas >= 2 and -slow-replica > 0, without -no-hedge")
		}
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatalf("opinedbload: %v", err)
	}

	ctx := context.Background()
	opts := harness.LoadOptions{
		Mix:         mix,
		Concurrency: *concurrency,
		Duration:    *duration,
		Seed:        *seed,
		K:           *k,
	}

	var (
		target harness.LoadTarget
		vocab  *corpus.Dataset
		fl     *harness.LoadFleet
		srv    *http.Server
	)
	if *smoke {
		dir, err := os.MkdirTemp("", "opinedbload-*")
		if err != nil {
			log.Fatalf("opinedbload: %v", err)
		}
		defer os.RemoveAll(dir)
		log.Printf("building %d-shard journaled fleet (replicas %d, seed %d)...", *shards, *replicas, *seed)
		tropts := &trace.Options{}
		if *slowMS > 0 {
			tropts.SlowCutoff = time.Duration(*slowMS * float64(time.Millisecond))
		}
		if *traceSmoke {
			// A hedge-won request is FAST — that is hedging working — so it
			// would rarely clear the slow-retention cutoff. Sample every
			// trace and widen the ring so the gate has wins to inspect.
			tropts.SampleRate = 1
			tropts.Capacity = 4096
		}
		fl, err = harness.BuildLoadFleet(dir, harness.LoadFleetOptions{
			Shards:         *shards,
			Replicas:       *replicas,
			Seed:           *seed,
			DisableHedging: *noHedge,
			HedgeDelay:     *hedgeDelay,
			SlowReplica:    *slowReplica,
			Trace:          tropts,
		})
		if err != nil {
			log.Fatalf("opinedbload: %v", err)
		}
		if *slowReplica > 0 {
			defer func() {
				fired, wins := fl.Router.HedgeStats()
				log.Printf("hedges: fired %d, won %d", fired, wins)
			}()
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("opinedbload: %v", err)
		}
		srv = &http.Server{Handler: fl.Handler}
		go srv.Serve(ln)
		defer srv.Close()
		base := "http://" + ln.Addr().String()
		log.Printf("fleet listening on %s", base)
		target = harness.HTTPLoadTarget(base, nil)
		vocab = fl.Dataset
	} else {
		genCfg := corpus.SmallConfig()
		genCfg.Seed = *seed
		vocab = corpus.GenerateHotels(genCfg)
		target = harness.HTTPLoadTarget(*addr, nil)
	}

	res := harness.RunLoadMix(ctx, target, vocab, opts)
	if srv != nil {
		// Drain before judging the run: workers whose deadline expired
		// mid-request abandoned the client side, but the server handlers
		// are still journaling and folding those writes. The fingerprint
		// gate compares journals against live state, so every in-flight
		// commit must land first.
		drainCtx, cancelDrain := context.WithTimeout(ctx, 30*time.Second)
		if err := srv.Shutdown(drainCtx); err != nil {
			log.Fatalf("opinedbload: drain: %v", err)
		}
		cancelDrain()
	}
	if *jsonOut {
		data, _ := json.MarshalIndent(res, "", "  ")
		fmt.Println(string(data))
	} else {
		fmt.Print(harness.FormatLoad(res))
	}
	if res.Err != "" {
		os.Exit(1)
	}
	if *slowMS > 0 {
		if err := printSlowTraces(*addr, fl, *slowMS); err != nil {
			log.Fatalf("opinedbload: slow traces: %v", err)
		}
	}
	if *smoke {
		if err := checkSmoke(res); err != nil {
			log.Fatalf("opinedbload: smoke FAILED: %v", err)
		}
		log.Printf("smoke OK: %d ops, 0 errors", res.TotalOps)
		if *traceSmoke {
			if err := checkTraceSmoke(fl); err != nil {
				log.Fatalf("opinedbload: trace-smoke FAILED: %v", err)
			}
		}
		if *fingerprint {
			if err := checkFingerprint(ctx, fl); err != nil {
				log.Fatalf("opinedbload: fingerprint FAILED: %v", err)
			}
		}
	}
}

// printSlowTraces renders every retained trace slower than minMS, the
// "chase one slow request" workflow: run the load, then read exactly the
// traces tail sampling kept for you. Smoke mode reads the in-process
// collector; -addr mode asks the live fleet's /debug/traces.
func printSlowTraces(addr string, fl *harness.LoadFleet, minMS float64) error {
	var traces []trace.TraceJSON
	if fl != nil {
		for _, t := range fl.Trace.Snapshot() {
			if t.DurationMS >= minMS {
				traces = append(traces, t)
			}
		}
	} else {
		resp, err := http.Get(strings.TrimRight(addr, "/") + fmt.Sprintf("/debug/traces?min_ms=%g", minMS))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("/debug/traces answered %d (is the fleet running with tracing enabled?)", resp.StatusCode)
		}
		var body struct {
			Traces []trace.TraceJSON `json:"traces"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return err
		}
		traces = body.Traces
	}
	log.Printf("%d retained traces slower than %gms", len(traces), minMS)
	for _, t := range traces {
		data, _ := json.MarshalIndent(t, "", "  ")
		fmt.Println(string(data))
	}
	return nil
}

// checkTraceSmoke enforces the end-to-end tracing contract on the
// smoke fleet's collector: some retained trace must show a hedge that
// fired and won — its winning scatter leg attributed to a shard and
// replica — and that same trace must carry server-side spans, proving
// the trace id propagated across the (real TCP) process boundary and
// the whole request assembled into one record.
func checkTraceSmoke(fl *harness.LoadFleet) error {
	traces := fl.Trace.Snapshot()
	if len(traces) == 0 {
		return fmt.Errorf("trace store is empty after the run")
	}
	attr := func(s trace.SpanJSON, key string) string {
		for _, a := range s.Attrs {
			if a.Key == key {
				return a.Value
			}
		}
		return ""
	}
	for _, t := range traces {
		var hedgeWon, serverSide bool
		for _, s := range t.Spans {
			if s.Name == "router.leg" && attr(s, "hedge_won") == "true" &&
				attr(s, "shard") != "" && attr(s, "replica") != "" {
				hedgeWon = true
			}
			if strings.HasPrefix(s.Name, "server.") {
				serverSide = true
			}
		}
		if hedgeWon && serverSide {
			log.Printf("trace-smoke OK: trace %s (%.1fms, %d spans) shows a hedge-won leg with shard/replica attribution and propagated server spans",
				t.TraceID, t.DurationMS, len(t.Spans))
			return nil
		}
	}
	return fmt.Errorf("no retained trace shows a hedge-won leg with server-side spans (%d traces inspected)", len(traces))
}

// parseMix reads "query=4,topk=3,interpret=2,reviews=1"; omitted ops
// get weight 0.
func parseMix(spec string) (harness.LoadMix, error) {
	var m harness.LoadMix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad mix weight %q", part)
		}
		switch strings.TrimSpace(strings.ToLower(name)) {
		case "query":
			m.Query = w
		case "topk":
			m.TopK = w
		case "interpret":
			m.Interpret = w
		case "reviews":
			m.Reviews = w
		default:
			return m, fmt.Errorf("unknown op %q (want query|topk|interpret|reviews)", name)
		}
	}
	if m.Query+m.TopK+m.Interpret+m.Reviews == 0 {
		return m, fmt.Errorf("mix %q has no operations", spec)
	}
	return m, nil
}

// checkFingerprint enforces the write-path byte-identity gate: every
// journaled write replays into the monolithic database the fleet was
// built from — each in its owner shard's commit order (see
// LoadFleet.ReplayOwnedWrites) — and the routed fleet, which served
// those writes concurrently and group-committed, must then answer the
// complete query set byte-identically to that monolith.
func checkFingerprint(ctx context.Context, fl *harness.LoadFleet) error {
	// Converge before auditing: a replication the loaded replica refused
	// (the injected-slow node shedding under -slow-replica, say) is healed
	// by the write path's next heal-before-write pass — but writes landing
	// at the very end of the run have no later write to trigger it, which
	// would leave one replica honestly stale and fail the identity check
	// below for scheduling reasons, not correctness ones. One anti-entropy
	// pass settles the fleet exactly the way an operator would.
	if _, err := fl.Router.RunRepair(ctx); err != nil {
		return fmt.Errorf("pre-fingerprint repair pass: %w", err)
	}
	applied, err := fl.ReplayOwnedWrites()
	if err != nil {
		return fmt.Errorf("replay into monolith: %w", err)
	}
	fleetFP, n := harness.QueryFingerprint(fl.Dataset, fl.Router.Engine(ctx))
	monoFP, _ := harness.QueryFingerprint(fl.Dataset, fl.DB)
	if fleetFP != monoFP {
		return fmt.Errorf("routed fleet diverges from the replayed monolith over the %d-entry query set (%d journaled writes)", n, applied)
	}
	log.Printf("fingerprint OK: %d journaled writes replayed; %d-entry query set byte-identical (routed fleet vs monolith)", applied, n)
	return nil
}

// checkSmoke enforces the self-check contract: traffic flowed on every
// configured op, nothing errored, and latencies were actually measured.
func checkSmoke(res harness.LoadResult) error {
	if res.TotalOps == 0 {
		return fmt.Errorf("no operations completed")
	}
	if res.TotalErrors != 0 {
		return fmt.Errorf("%d request errors", res.TotalErrors)
	}
	for op, st := range res.PerOp {
		if st.Ops == 0 {
			continue
		}
		if st.P99Micros <= 0 {
			return fmt.Errorf("op %s: zero p99 over %d ops", op, st.Ops)
		}
	}
	return nil
}
