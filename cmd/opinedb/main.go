// Command opinedb builds a subjective database over a generated review
// corpus and answers subjective SQL queries, either one-shot (-query) or
// in an interactive REPL.
//
// Examples:
//
//	opinedb -domain hotel -query 'select * from Hotels where price_pn < 150 and "has really clean rooms" limit 5'
//	opinedb -domain restaurant            # REPL
//
// REPL extras: `\interpret <predicate>` shows the Figure 5 interpretation
// chain for a predicate; `\schema` lists the subjective attributes and
// their markers; `\evidence <entity> <attribute>` prints provenance.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	domain := flag.String("domain", "hotel", "corpus domain: hotel or restaurant")
	query := flag.String("query", "", "one-shot subjective SQL query (REPL if empty)")
	seed := flag.Int64("seed", 1, "corpus and build seed")
	small := flag.Bool("small", false, "build a small corpus (faster startup)")
	topK := flag.Int("k", 10, "result size")
	flag.Parse()

	genCfg := corpus.DefaultConfig()
	if *small {
		genCfg = corpus.SmallConfig()
		genCfg.HotelsLondon, genCfg.HotelsAmsterdam = 60, 25
		genCfg.ReviewsPerHotel = 20
		genCfg.Restaurants = 80
	}
	genCfg.Seed = *seed

	fmt.Fprintf(os.Stderr, "generating %s corpus and building subjective database...\n", *domain)
	start := time.Now()
	var d *corpus.Dataset
	switch *domain {
	case "hotel":
		d = corpus.GenerateHotels(genCfg)
	case "restaurant":
		d = corpus.GenerateRestaurants(genCfg)
	default:
		log.Fatalf("unknown domain %q (want hotel or restaurant)", *domain)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	db, err := harness.BuildDB(d, cfg, 800, 800)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ready: %d entities, %d reviews, %d extractions, %d subjective attributes (%.1fs)\n\n",
		len(d.Entities), len(d.Reviews), len(db.Extractions), len(db.Attrs), time.Since(start).Seconds())

	if *query != "" {
		if err := runQuery(db, d, *query, *topK); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Println(`OpineDB REPL — subjective SQL over the Entities relation.
Example: select * from Entities where price_pn < 200 and "has really clean rooms" limit 5
Commands: \schema  \interpret <predicate>  \evidence <entity> <attribute>  \quit`)
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("opinedb> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "" || line == `\quit` || line == "quit" || line == "exit":
			if line != "" {
				return
			}
		case line == `\schema`:
			printSchema(db)
		case strings.HasPrefix(line, `\interpret `):
			printInterpretation(db, strings.TrimPrefix(line, `\interpret `))
		case strings.HasPrefix(line, `\evidence `):
			parts := strings.Fields(strings.TrimPrefix(line, `\evidence `))
			if len(parts) != 2 {
				fmt.Println("usage: \\evidence <entityID> <attribute>")
				continue
			}
			printEvidence(db, parts[0], parts[1])
		default:
			if err := runQuery(db, d, line, *topK); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

func runQuery(db *core.DB, d *corpus.Dataset, sql string, topK int) error {
	opts := core.DefaultQueryOptions()
	opts.TopK = topK
	start := time.Now()
	res, err := db.QueryWithOptions(sql, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("rewritten: %s\n", res.Rewritten)
	for text, in := range res.Interpretations {
		fmt.Printf("  %q → [%s] %s\n", text, in.Method, in.String())
	}
	fmt.Printf("%-8s %-22s %-7s", "entity", "name", "score")
	var preds []string
	for text := range res.Interpretations {
		preds = append(preds, text)
	}
	for range preds {
		fmt.Printf(" %6s", "pred")
	}
	fmt.Println()
	for _, row := range res.Rows {
		name := ""
		if e := d.EntityByID(row.EntityID); e != nil {
			name = e.Name
		}
		fmt.Printf("%-8s %-22s %.4f ", row.EntityID, name, row.Score)
		for _, p := range preds {
			fmt.Printf(" %.3f", row.PredicateScores[p])
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows, %.1fms)\n\n", len(res.Rows), float64(elapsed.Microseconds())/1000)
	return nil
}

func printSchema(db *core.DB) {
	fmt.Println("Subjective attributes (markers worst→best for linear domains):")
	for _, a := range db.Attrs {
		kind := "linear"
		if a.Categorical {
			kind = "categorical"
		}
		fmt.Printf("  * %s (%s, %d domain phrases)\n", a.Name, kind, len(a.DomainPhrases))
		for i, m := range a.Markers {
			fmt.Printf("      [%d] %-28s senti=%+.2f\n", i, m.Name, m.Sentiment)
		}
	}
}

func printInterpretation(db *core.DB, pred string) {
	pred = strings.Trim(pred, `"' `)
	in := db.Interpret(pred)
	fmt.Printf("predicate: %q\n  chosen stage: %s\n  interpretation: %s\n", pred, in.Method, in.String())
	w := db.InterpretW2VOnly(pred)
	fmt.Printf("  [w2v stage]      sim=%.3f best variation=%q → %s\n", w.Similarity, w.MatchedPhrase, w.String())
	c := db.InterpretCooccurOnly(pred)
	fmt.Printf("  [co-occur stage] conf=%.3f → %s\n", c.Similarity, c.String())
}

func printEvidence(db *core.DB, entity, attribute string) {
	attr := db.Attr(attribute)
	if attr == nil {
		fmt.Printf("no attribute %q\n", attribute)
		return
	}
	s := db.Summary(attribute, entity)
	if s == nil {
		fmt.Printf("no summary for %s/%s\n", entity, attribute)
		return
	}
	fmt.Printf("marker summary of %s.%s (total %d phrases):\n", entity, attribute, int(s.Total))
	for i, m := range attr.Markers {
		fmt.Printf("  [%d] %-28s count=%3.0f avgSenti=%+.2f\n", i, m.Name, s.Counts[i], s.AvgSentiment(i))
		for j, ext := range db.ProvenanceOf(attribute, entity, i) {
			if j >= 3 {
				fmt.Printf("        … and %d more\n", int(s.Counts[i])-3)
				break
			}
			fmt.Printf("        review %s: (%q, %q)\n", ext.ReviewID, ext.Aspect, ext.Phrase)
		}
	}
}
