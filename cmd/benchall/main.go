// Command benchall regenerates every table and figure of the paper's
// evaluation (§5 and the appendices) in one run, printing paper-formatted
// output. Flags trade fidelity for speed; the defaults complete in a few
// minutes on a laptop.
//
// Usage:
//
//	benchall [-quick] [-seed N] [-skip table5,table6,...]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
)

func main() {
	quick := flag.Bool("quick", false, "reduced corpus and trial counts (~10x faster)")
	seed := flag.Int64("seed", 1, "master random seed")
	skip := flag.String("skip", "", "comma-separated experiments to skip (table3..table8,figure7,figure8,appendixB,appendixC,concurrency,persistence,sharding,rebalance,load,replication,replicaops,groupcommit)")
	baseline := flag.String("baseline", "", "compare the load experiment's SLOs against this committed baseline JSON (BENCH_baseline.json) and WARN on regressions — advisory only, never fails the run (shared CI machines are too noisy for a hard latency gate)")
	flag.Parse()

	skipped := map[string]bool{}
	for _, s := range strings.Split(*skip, ",") {
		if s = strings.TrimSpace(strings.ToLower(s)); s != "" {
			skipped[s] = true
		}
	}
	run := func(name string) bool { return !skipped[strings.ToLower(name)] }

	genCfg := corpus.DefaultConfig()
	t5 := harness.DefaultTable5Config()
	t7 := harness.DefaultTable7Config()
	table6Trials := 3
	taggedN, labelsN := 900, 1000
	if *quick {
		genCfg = corpus.SmallConfig()
		genCfg.HotelsLondon, genCfg.HotelsAmsterdam = 60, 25
		genCfg.ReviewsPerHotel = 20
		genCfg.Restaurants = 80
		genCfg.ReviewsPerRestaurant = 10
		t5.QueriesPerSet, t5.Trials = 10, 2
		t7.QueriesPerSet = 30
		table6Trials = 2
		taggedN, labelsN = 500, 600
	}
	genCfg.Seed = *seed

	start := time.Now()
	fmt.Println("== OpineDB experiment suite ==")
	fmt.Printf("corpus: %d hotels, %d restaurants (seed %d, quick=%v)\n\n",
		genCfg.HotelsLondon+genCfg.HotelsAmsterdam, genCfg.Restaurants, *seed, *quick)

	if run("table3") {
		fmt.Println(harness.FormatTable3(harness.RunTable3(*seed)))
	}

	fmt.Println("generating corpora...")
	hotels := corpus.GenerateHotels(genCfg)
	restaurants := corpus.GenerateRestaurants(genCfg)
	fmt.Printf("  hotels: %d entities, %d reviews; restaurants: %d entities, %d reviews (%.1fs)\n\n",
		len(hotels.Entities), len(hotels.Reviews),
		len(restaurants.Entities), len(restaurants.Reviews), time.Since(start).Seconds())

	if run("table4") {
		fmt.Println(harness.FormatTable4(harness.RunTable4(hotels, restaurants)))
	}

	needDB := run("table5") || run("table7") || run("table8") || run("figure7") || run("figure8") || run("appendixb") || run("concurrency")
	var hotelDB, restDB *core.DB
	if needDB {
		fmt.Println("building subjective databases (extraction + markers + summaries)...")
		buildStart := time.Now()
		cfg := core.DefaultConfig()
		cfg.Seed = *seed
		cfg.UseSubstitutionIndex = run("appendixb")
		var err error
		hotelDB, err = harness.BuildDB(hotels, cfg, taggedN, labelsN)
		if err != nil {
			log.Fatalf("hotel build: %v", err)
		}
		restDB, err = harness.BuildDB(restaurants, cfg, taggedN, labelsN)
		if err != nil {
			log.Fatalf("restaurant build: %v", err)
		}
		fmt.Printf("  built in %.1fs (hotel: %d extractions, restaurant: %d)\n\n",
			time.Since(buildStart).Seconds(), len(hotelDB.Extractions), len(restDB.Extractions))
	}

	if run("table5") {
		fmt.Println("running Table 5 (quality vs baselines)...")
		t5.Seed = *seed + 100
		fmt.Println(harness.FormatTable5(harness.RunTable5(hotels, restaurants, hotelDB, restDB, t5)))
	}
	if run("table6") {
		fmt.Println("running Table 6 (extractor F1)...")
		fmt.Println(harness.FormatTable6(harness.RunTable6(table6Trials, *seed+200)))
	}
	if run("table7") {
		fmt.Println("running Table 7 (marker speedup)...")
		t7.Seed = *seed + 300
		fmt.Println(harness.FormatTable7(harness.RunTable7(hotels, restaurants, hotelDB, restDB, t7)))
	}
	if run("table8") {
		fmt.Println("running Table 8 (interpreter accuracy)...")
		fmt.Println(harness.FormatTable8(harness.RunTable8(hotels, restaurants, hotelDB, restDB, *seed+400)))
	}
	if run("figure7") {
		fmt.Println(harness.FormatFigure7(harness.RunFigure7(hotelDB)))
	}
	if run("figure8") {
		fmt.Println(harness.FormatFigure8(harness.RunFigure8(hotels, hotelDB)))
	}
	if run("appendixb") {
		fmt.Println(harness.FormatAppendixB(harness.RunAppendixB(hotels, hotelDB)))
	}
	if run("appendixc") {
		fmt.Println(harness.FormatAppendixC(harness.RunAppendixC(*seed + 500)))
	}
	if run("concurrency") {
		fmt.Println("running concurrency (parallel serving + parallel build)...")
		fmt.Println(harness.FormatConcurrency(harness.RunConcurrency(hotels, hotelDB, *seed+600)))
	}
	if run("persistence") {
		fmt.Println("running persistence (snapshot cold start vs rebuild)...")
		fmt.Println(harness.FormatPersistence(harness.RunPersistence(*seed + 700)))
	}
	if run("sharding") {
		fmt.Println("running sharding (scatter-gather router vs monolith)...")
		fmt.Println(harness.FormatSharding(harness.RunSharding(context.Background(), *seed+800)))
	}
	if run("rebalance") {
		fmt.Println("running rebalance (online N→M re-partitioning vs full rebuild)...")
		fmt.Println(harness.FormatRebalance(harness.RunRebalance(context.Background(), *seed+900)))
	}
	if run("load") {
		fmt.Println("running load (mixed-traffic SLOs + hot-path A/Bs)...")
		loadRes := harness.RunLoad(context.Background(), *seed+1000)
		fmt.Println(harness.FormatLoadBench(loadRes))
		if data, err := json.MarshalIndent(loadRes, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_load.json", data, 0o644); err != nil {
				log.Printf("BENCH_load.json: %v", err)
			} else {
				fmt.Println("wrote BENCH_load.json")
			}
		}
		if *baseline != "" {
			compareBaseline(*baseline, loadRes)
		}
	}
	if run("replication") {
		fmt.Println("running replication (replica-set read scaling + hedged-scatter tail A/B)...")
		replRes := harness.RunReplication(context.Background(), *seed+1100)
		fmt.Println(harness.FormatReplication(replRes))
		if data, err := json.MarshalIndent(replRes, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_replication.json", data, 0o644); err != nil {
				log.Printf("BENCH_replication.json: %v", err)
			} else {
				fmt.Println("wrote BENCH_replication.json")
			}
		}
	}

	if run("replicaops") {
		fmt.Println("running replicaops (live replica join vs rebuild + hot-range scaling 1→3)...")
		opsRes := harness.RunReplicaOps(context.Background(), *seed+1300)
		fmt.Println(harness.FormatReplicaOps(opsRes))
		if data, err := json.MarshalIndent(opsRes, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_replicaops.json", data, 0o644); err != nil {
				log.Printf("BENCH_replicaops.json: %v", err)
			} else {
				fmt.Println("wrote BENCH_replicaops.json")
			}
		}
	}

	if run("groupcommit") {
		fmt.Println("running groupcommit (shared-fsync write pipeline vs serialized seed path)...")
		gcRes := harness.RunGroupCommit(context.Background(), *seed+1200)
		fmt.Println(harness.FormatGroupCommit(gcRes))
		if data, err := json.MarshalIndent(gcRes, "", "  "); err == nil {
			if err := os.WriteFile("BENCH_groupcommit.json", data, 0o644); err != nil {
				log.Printf("BENCH_groupcommit.json: %v", err)
			} else {
				fmt.Println("wrote BENCH_groupcommit.json")
			}
		}
	}

	fmt.Printf("total time: %.1fs\n", time.Since(start).Seconds())
	os.Exit(0)
}

// compareBaseline reads a committed load baseline and reports, warn-only,
// where the current run regressed: per-op p95 latency more than 1.5x the
// baseline, or overall throughput below 2/3 of it. Advisory output for
// `make slo-check` — machine noise (shared CI runners, thermal state)
// makes a hard latency gate flakier than it is protective, so a human
// reads the warnings next to the diff that caused them.
func compareBaseline(path string, cur harness.LoadBenchResult) {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Printf("slo-check: baseline %s: %v", path, err)
		return
	}
	var base harness.LoadBenchResult
	if err := json.Unmarshal(data, &base); err != nil {
		log.Printf("slo-check: baseline %s: %v", path, err)
		return
	}
	fmt.Printf("slo-check: comparing against %s\n", path)
	warned := false
	for op, bst := range base.Mixed.PerOp {
		cst, ok := cur.Mixed.PerOp[op]
		if !ok || bst.P95Micros <= 0 || cst.Ops == 0 {
			continue
		}
		if cst.P95Micros > bst.P95Micros*1.5 {
			fmt.Printf("slo-check: WARN %s p95 %.0fµs vs baseline %.0fµs (%.1fx)\n",
				op, cst.P95Micros, bst.P95Micros, cst.P95Micros/bst.P95Micros)
			warned = true
		}
	}
	if base.Mixed.OpsPerSecond > 0 && cur.Mixed.OpsPerSecond < base.Mixed.OpsPerSecond*2/3 {
		fmt.Printf("slo-check: WARN throughput %.0f ops/s vs baseline %.0f ops/s\n",
			cur.Mixed.OpsPerSecond, base.Mixed.OpsPerSecond)
		warned = true
	}
	if !warned {
		fmt.Println("slo-check: OK — no SLO regressions against the baseline")
	}
}
