// Command opinedbd is the always-on OpineDB server: it generates a corpus
// for the chosen domain, builds the subjective database with the parallel
// construction pipeline, and serves the HTTP JSON API of internal/server
// until interrupted.
//
// Examples:
//
//	opinedbd -addr :8080 -domain hotel
//	curl 'localhost:8080/query?sql=select+*+from+Hotels+where+"has+really+clean+rooms"&k=5'
//	curl 'localhost:8080/interpret?predicate=romantic+getaway'
//	curl 'localhost:8080/schema'
//	curl 'localhost:8080/evidence?entity=h1&attribute=room_cleanliness'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	domain := flag.String("domain", "hotel", "corpus domain: hotel or restaurant")
	seed := flag.Int64("seed", 1, "corpus and build seed")
	small := flag.Bool("small", false, "build a small corpus (faster startup)")
	workers := flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS)")
	topK := flag.Int("k", 10, "default result size")
	flag.Parse()

	genCfg := corpus.DefaultConfig()
	if *small {
		genCfg = corpus.SmallConfig()
		genCfg.HotelsLondon, genCfg.HotelsAmsterdam = 60, 25
		genCfg.ReviewsPerHotel = 20
		genCfg.Restaurants = 80
	}
	genCfg.Seed = *seed

	log.Printf("generating %s corpus and building subjective database...", *domain)
	start := time.Now()
	var d *corpus.Dataset
	switch *domain {
	case "hotel":
		d = corpus.GenerateHotels(genCfg)
	case "restaurant":
		d = corpus.GenerateRestaurants(genCfg)
	default:
		log.Fatalf("unknown domain %q (want hotel or restaurant)", *domain)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	cfg.BuildWorkers = *workers
	db, err := harness.BuildDB(d, cfg, 800, 800)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	log.Printf("ready: %d entities, %d reviews, %d extractions, %d subjective attributes (%.1fs)",
		len(d.Entities), len(d.Reviews), len(db.Extractions), len(db.Attrs),
		time.Since(start).Seconds())

	srv := server.New(db, server.Options{
		DefaultTopK: *topK,
		EntityName: func(id string) string {
			if e := d.EntityByID(id); e != nil {
				return e.Name
			}
			return ""
		},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: logRequests(srv)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// logRequests is a minimal access-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%.1fms)", r.Method, r.URL.RequestURI(), float64(time.Since(start).Microseconds())/1000)
	})
}
