// Command opinedbd is the always-on OpineDB server. It runs in one of
// three roles:
//
//   - Monolith: -snapshot loads a snapshot artifact written by opinedbb
//     (mmap-or-read) and serves immediately; when the file does not exist
//     (or no -snapshot is given) it falls back to the in-process build.
//   - Shard replica: -shard-manifest + -shard-index load one shard of a
//     sharded build (digest-verified against the manifest) and serve just
//     that entity range.
//   - Router: -router loads a shard manifest and scatter-gathers the
//     query API over the fleet — remote replicas named by
//     -router-backends, or every shard loaded in process when the flag is
//     empty (single-binary sharded serving).
//
// Every role supports live incremental enrichment: POST /reviews appends
// the delta to a durable journal next to the served snapshot
// (-journal, default auto) and applies it under the server's writer
// lock. Load order is snapshot → journal replay → serve, so a crash
// mid-ingest loses at most the unfsynced tail (-journal-sync-every) and
// never serves corrupt state. `opinedbb -compact` folds a journal back
// into a fresh snapshot.
//
// The fleet control plane (internal/fleet) rides on the journal: every
// node reports its position (/journal/status, /healthz) and the router
// heals replicas that missed replicated writes — automatically after a
// partial write, on demand via POST /repair, and periodically with
// -repair-interval. `opinedbb -rebalance M -manifest f.manifest.json`
// re-partitions a stopped fleet to M shards without a rebuild.
//
// Examples:
//
//	opinedbb -domain hotel -o hotel.snap && opinedbd -snapshot hotel.snap
//	opinedbb -domain hotel -shards 4 -o hotel.snap
//	opinedbd -addr :8081 -shard-manifest hotel.manifest.json -shard-index 0
//	opinedbd -addr :8080 -router hotel.manifest.json -router-backends http://h1:8081,http://h2:8081,http://h3:8081,http://h4:8081
//	curl 'localhost:8080/query?sql=select+*+from+Hotels+where+"has+really+clean+rooms"&k=5'
//	curl 'localhost:8080/healthz'   # router mode aggregates per-shard health
//	curl -X POST localhost:8080/reviews -d '{"id":"r-new","entity":"h0012","reviewer":"ada","day":4200,"text":"The room was spotless."}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// metricsReg is the process-wide registry behind GET /metrics. All
// roles share it: in -router mode the front door and every in-process
// shard feed one registry, so a single scrape covers both tiers.
var metricsReg = obs.NewRegistry()

// tracer is the process-wide trace collector. Like the metrics
// registry, every role shares it: in -router mode the front door's
// spans and every in-process shard's spans land in one record per
// request, exactly as a distributed fleet's would after header
// propagation. Tail sampling keeps it cheap enough to leave on.
var tracer = trace.New(trace.Options{})

// fatal logs an error through the structured logger and exits — the
// slog-era replacement for log.Fatalf.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapPath := flag.String("snapshot", "", "snapshot artifact to serve (written by opinedbb); falls back to an in-process build when the file does not exist")
	journalMode := flag.String("journal", "auto", "review journal for live ingestion: 'auto' opens <snapshot>.journal next to the served artifact (replayed on load), 'off' serves read-only, any other value is an explicit journal directory")
	journalSync := flag.Int("journal-sync-every", 1, "fsync the journal after every Nth ingested review on the serialized write path (1 = every write is durable before it is acknowledged); the group-commit pipeline always fsyncs each batch")
	noGroupCommit := flag.Bool("no-group-commit", false, "serialize the write path (validate → append → fsync → apply under one lock per request) instead of the group-commit pipeline that shares one fsync across concurrent writers")
	writeQueueDepth := flag.Int("write-queue-depth", 0, "bound on the group-commit staging queue; writes arriving at a full queue get 503 + Retry-After (0 = default)")
	shardManifest := flag.String("shard-manifest", "", "shard manifest (written by opinedbb -shards); serve the single shard selected by -shard-index")
	shardIndex := flag.Int("shard-index", -1, "which shard of -shard-manifest to serve")
	shardReplica := flag.Int("shard-replica", 0, "which replica of the shard this process is (>0 suffixes the auto journal directory so co-located replicas do not share a journal)")
	routerManifest := flag.String("router", "", "shard manifest; act as the scatter-gather router over the fleet")
	routerBackends := flag.String("router-backends", "", "comma-separated shard base URLs for -router, ordered by shard index; within a shard, separate replica URLs with '|' (http://a:8081|http://a2:8081). Empty loads every shard in process")
	replicas := flag.String("replicas", "", `router role, in-process fleet: replica-set shape override — "3" serves every range with 3 replicas, "0=3,1=1" per-range pairs (unlisted ranges default to 1); "" follows the manifest`)
	noHedge := flag.Bool("no-hedge", false, "router role: disable hedged scatter legs (load balancing across replicas stays on)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "router role: fixed hedge delay (0 = adapt to each shard's scatter p95)")
	repairEvery := flag.Duration("repair-interval", 0, "router role: run a fleet-wide anti-entropy write-repair pass on this interval (0 disables; POST /repair triggers one on demand, and partial writes always heal automatically)")
	domain := flag.String("domain", "hotel", "corpus domain for the in-process build: hotel or restaurant")
	seed := flag.Int64("seed", 1, "corpus and build seed (in-process build)")
	small := flag.Bool("small", false, "build a small corpus (faster startup; in-process build)")
	workers := flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS; in-process build)")
	subindex := flag.Bool("subindex", true, "build the Appendix B substitution index (in-process build; match opinedbb's flag so a fallen-back replica serves identically to its snapshot-loaded peers)")
	tagged := flag.Int("tagged", 800, "gold sentences for extractor training (in-process build; match opinedbb's flag)")
	labels := flag.Int("labels", 800, "membership-function training labels (in-process build; match opinedbb's flag)")
	topK := flag.Int("k", 10, "default result size")
	debugAddr := flag.String("debug-addr", "", "serve the debug surface (net/http/pprof under /debug/pprof/, traces under /debug/traces) on this extra address; empty disables (the main mux always serves /debug/traces)")
	flag.Parse()

	if *debugAddr != "" {
		go func() {
			slog.Info("debug surface listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, trace.DebugMux(tracer)); err != nil {
				slog.Error("debug surface failed", "addr", *debugAddr, "err", err)
			}
		}()
	}

	tuning := ingestTuning{
		syncEvery:     *journalSync,
		noGroupCommit: *noGroupCommit,
		queueDepth:    *writeQueueDepth,
	}
	var handler http.Handler
	switch {
	case *routerManifest != "":
		handler = routerHandler(*routerManifest, *routerBackends, *topK, *journalMode, tuning, *repairEvery, *replicas, *noHedge, *hedgeDelay)
	case *shardManifest != "":
		handler = shardHandler(*shardManifest, *shardIndex, *shardReplica, *topK, *journalMode, tuning)
	default:
		handler = monolithHandler(*snapPath, *domain, *small, *seed, *workers, *tagged, *labels, *subindex, *topK, *journalMode, tuning)
	}
	serve(*addr, handler)
}

// ingestTuning carries the write-pipeline flags every role threads to
// attachJournal.
type ingestTuning struct {
	syncEvery     int
	noGroupCommit bool
	queueDepth    int
}

// journalDir resolves the -journal flag against the served artifact:
// "auto" puts the journal next to the snapshot ("<artifact>.journal"),
// "off" disables it, anything else is an explicit directory.
func journalDir(mode, artifactPath string) string {
	switch mode {
	case "off":
		return ""
	case "auto":
		if artifactPath == "" {
			return ""
		}
		return journal.Dir(artifactPath)
	default:
		return mode
	}
}

// attachJournal is the serving side of the snapshot+journal lifecycle:
// open the journal (crash recovery truncates a torn tail), replay every
// surviving delta into the freshly loaded database, and return ingest
// options whose Append feeds the same journal — so load order is always
// snapshot → replay → serve. An empty dir enables volatile (unjournaled)
// ingestion.
func attachJournal(db *core.DB, dir string, tun ingestTuning, acceptUnowned bool) *server.IngestOptions {
	if dir == "" {
		slog.Warn("ingestion enabled without a journal; reviews ingested live will NOT survive a restart")
		return &server.IngestOptions{
			AcceptUnowned:      acceptUnowned,
			DisableGroupCommit: tun.noGroupCommit,
			MaxQueueDepth:      tun.queueDepth,
		}
	}
	j, err := journal.Open(dir, journal.Options{
		SyncEvery:    tun.syncEvery,
		SyncObserver: server.FsyncObserver(metricsReg),
	})
	if err != nil {
		fatal("journal open failed", "dir", dir, "err", err)
	}
	if rec := j.Recovery(); rec.Err != nil {
		slog.Warn("journal crash recovery dropped a torn tail", "dir", dir, "dropped_bytes", rec.DroppedBytes, "err", rec.Err)
	}
	st, err := journal.ApplyAll(db, dir)
	if err != nil {
		fatal("journal replay failed", "dir", dir, "err", err)
	}
	if st.Records > 0 {
		slog.Info("journal replayed", "dir", dir, "records", st.Records,
			"last_seq", st.LastSeq, "applied", st.Applied, "already_present", st.Skipped)
	}
	return &server.IngestOptions{
		AcceptUnowned: acceptUnowned,
		// The journal introspection surface (/journal/status, /journal/
		// records, the /healthz position) is what the fleet's anti-entropy
		// repair reads.
		JournalDir:     dir,
		JournalLastSeq: j.NextSeq() - 1,
		Append: func(rv core.ReviewData) (uint64, error) {
			return j.Append(journal.Review{
				ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
				Day: rv.Day, Text: rv.Text,
			})
		},
		// One fsync per commit batch: the group-commit pipeline's shared
		// durability point.
		AppendBatch: func(rvs []core.ReviewData) (uint64, error) {
			batch := make([]journal.Review, len(rvs))
			for i, rv := range rvs {
				batch[i] = journal.Review{
					ID: rv.ID, EntityID: rv.EntityID, Reviewer: rv.Reviewer,
					Day: rv.Day, Text: rv.Text,
				}
			}
			return j.AppendBatch(batch)
		},
		AppendDurable:      tun.syncEvery <= 1,
		DisableGroupCommit: tun.noGroupCommit,
		MaxQueueDepth:      tun.queueDepth,
	}
}

// monolithHandler is the original single-database role: load a snapshot
// or build in process.
func monolithHandler(snapPath, domain string, small bool, seed int64, workers, tagged, labels int, subindex bool, topK int, journalMode string, tun ingestTuning) http.Handler {
	var (
		db       *core.DB
		snapInfo *server.SnapshotInfo
	)
	if snapPath != "" {
		loaded, meta, err := snapshot.Load(snapPath)
		switch {
		case err == nil:
			if meta.Shard != nil {
				// A shard artifact silently serving as "the database" would
				// answer with a fraction of the entity space.
				fatal("snapshot is one shard of a sharded build; serve it with -shard-manifest/-shard-index",
					"path", snapPath, "shard", meta.Shard.Index, "shards", meta.Shard.Count)
			}
			db = loaded
			snapInfo = snapshotInfo(snapPath, meta)
			slog.Info("loaded snapshot", "path", snapPath, "name", meta.Name,
				"entities", meta.Entities, "reviews", meta.Reviews, "extractions", meta.Extractions,
				"seed", meta.BuildSeed, "load_ms", snapInfo.LoadMillis)
		case errors.Is(err, fs.ErrNotExist):
			slog.Warn("snapshot not found; falling back to in-process build", "path", snapPath)
		default:
			// A present-but-unusable artifact is an operator problem;
			// silently rebuilding would mask it across a fleet.
			fatal("snapshot load failed", "path", snapPath, "err", err)
		}
	}

	if db == nil {
		// Build through the same helper as opinedbb with matching flags, so
		// a replica that fell back serves the same database its peers
		// loaded from a snapshot of the same domain/size/seed.
		slog.Info("generating corpus and building subjective database", "domain", domain)
		start := time.Now()
		d, built, err := harness.BuildDomain(domain, small, seed, workers, tagged, labels, subindex)
		if err != nil {
			fatal("build failed", "err", err)
		}
		db = built
		slog.Info("build ready", "entities", len(d.Entities), "reviews", len(d.Reviews),
			"extractions", len(db.Extractions), "attrs", len(db.Attrs),
			"seconds", time.Since(start).Seconds())
	}

	// Load order: snapshot → journal replay → serve. The journal lives
	// next to the snapshot even when the replica fell back to an
	// in-process build, so a fleet's ingestion layout is uniform.
	ingest := attachJournal(db, journalDir(journalMode, snapPath), tun, false)
	return server.New(db, server.Options{
		DefaultTopK: topK,
		EntityName:  entityNamer(db),
		Snapshot:    snapInfo,
		Ingest:      ingest,
		Metrics:     metricsReg,
		Trace:       tracer,
	})
}

// shardHandler serves one digest-verified shard of a sharded build.
// replica > 0 marks this process as the range's Nth replica: it serves
// the same artifact but keeps its own journal chain.
func shardHandler(manifestPath string, index, replica, topK int, journalMode string, tun ingestTuning) http.Handler {
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		fatal("shard manifest load failed", "path", manifestPath, "err", err)
	}
	db, meta, err := snapshot.LoadVerifiedShard(manifestPath, m, index)
	if err != nil {
		fatal("shard load failed", "shard", index, "path", manifestPath, "err", err)
	}
	shardPath := snapshot.ShardPath(manifestPath, m.Shard[index])
	info := snapshotInfo(shardPath, meta)
	slog.Info("serving shard", "shard", index, "shards", m.Shards, "replica", replica,
		"name", m.Name, "entities", meta.Shard.Entities,
		"first_entity", meta.Shard.FirstEntity, "last_entity", meta.Shard.LastEntity,
		"load_ms", info.LoadMillis)
	// AcceptUnowned: a shard journals and absorbs replicated writes for
	// entities other shards own (corpus-global state must not drift).
	ingest := attachJournal(db, replicaJournalDir(journalDir(journalMode, shardPath), replica), tun, true)
	return server.New(db, server.Options{
		DefaultTopK: topK,
		EntityName:  entityNamer(db),
		Snapshot:    info,
		Ingest:      ingest,
		Metrics:     metricsReg,
		Trace:       tracer,
	})
}

// replicaJournalDir suffixes a journal directory for replicas past the
// first, so co-located replicas of one shard never share a chain (the
// journal's directory lock would refuse the second opener).
func replicaJournalDir(dir string, replica int) string {
	if dir == "" || replica <= 0 {
		return dir
	}
	return fmt.Sprintf("%s-r%d", dir, replica)
}

// routerHandler assembles the scatter-gather router: remote backends when
// -router-backends is given, otherwise every shard loaded in process
// (a non-empty -replicas spec overrides the manifest's replica shape
// there).
// repairEvery > 0 starts a background anti-entropy loop over the fleet.
func routerHandler(manifestPath, backendList string, topK int, journalMode string, tun ingestTuning, repairEvery time.Duration, replicas string, noHedge bool, hedgeDelay time.Duration) http.Handler {
	opts := router.Options{
		DefaultTopK:    topK,
		Metrics:        metricsReg,
		Trace:          tracer,
		DisableHedging: noHedge,
		HedgeDelay:     hedgeDelay,
	}
	if backendList == "" {
		pm, err := snapshot.LoadManifest(manifestPath)
		if err != nil {
			fatal("router manifest load failed", "path", manifestPath, "err", err)
		}
		perRange, uniform, err := snapshot.ParseReplicaSpec(replicas, pm.Shards)
		if err != nil {
			fatal("router -replicas spec invalid", "spec", replicas, "err", err)
		}
		rt, m, err := router.FromManifest(manifestPath, router.ManifestOptions{
			Options:          opts,
			Replicas:         uniform,
			ReplicasPerRange: perRange,
			ShardServer: func(shard, replica int, path string, db *core.DB, meta *snapshot.Meta) server.Options {
				// Each in-process node needs its own journal chain: with an
				// explicit -journal dir, derive a per-shard subdirectory (a
				// shared chain would interleave two writers' sequences; the
				// journal's directory lock refuses it outright), and replicas
				// past the first get a -rN suffix either way.
				dir := journalDir(journalMode, path)
				if journalMode != "auto" && journalMode != "off" {
					dir = filepath.Join(journalMode, fmt.Sprintf("shard-%d", shard))
				}
				return server.Options{
					DefaultTopK: topK,
					EntityName:  entityNamer(db),
					Snapshot:    snapshotInfo(path, meta),
					Ingest:      attachJournal(db, replicaJournalDir(dir, replica), tun, true),
					Metrics:     metricsReg,
					Trace:       tracer,
				}
			},
		})
		if err != nil {
			fatal("router assembly failed", "err", err)
		}
		slog.Info("routing over in-process shards", "name", m.Name, "shards", m.Shards, "nodes", rt.NumNodes())
		startRepairLoop(rt, repairEvery)
		return router.NewHandler(rt)
	}
	m, err := snapshot.LoadManifest(manifestPath)
	if err != nil {
		fatal("router manifest load failed", "path", manifestPath, "err", err)
	}
	groups := strings.Split(backendList, ",")
	if len(groups) != m.Shards {
		fatal("router-backends shard count mismatch", "backends", len(groups), "path", manifestPath, "shards", m.Shards)
	}
	var shards []router.Shard
	for i, g := range groups {
		sh := router.Shard{
			FirstEntity: m.Shard[i].FirstEntity,
			LastEntity:  m.Shard[i].LastEntity,
		}
		// "url|url|url": the shard's replica set, any length ≥ 1 — a fleet
		// need not replicate every range equally.
		for j, u := range strings.Split(g, "|") {
			u = strings.TrimSpace(u)
			if u == "" {
				fatal("router-backends has an empty replica URL", "shard", i)
			}
			b := &router.HTTPBackend{BaseURL: u}
			if j == 0 {
				sh.Backend = b
			} else {
				sh.Replicas = append(sh.Replicas, b)
			}
		}
		shards = append(shards, sh)
	}
	rt, err := router.New(shards, opts)
	if err != nil {
		fatal("router assembly failed", "err", err)
	}
	// A misordered backend list misroutes /evidence silently; refuse to
	// start if any reachable backend reports the wrong shard identity.
	// (Unreachable backends are allowed — replicas may still be starting.)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.VerifyShardIdentities(ctx); err != nil {
		fatal("shard identity verification failed", "err", err)
	}
	slog.Info("routing over remote shards", "name", m.Name, "shards", m.Shards, "nodes", rt.NumNodes())
	startRepairLoop(rt, repairEvery)
	return router.NewHandler(rt)
}

// startRepairLoop runs periodic fleet-wide anti-entropy passes: diff
// journal positions across the shards, backfill laggards through the
// replica-write path, log what converged. Partial writes already heal
// inline; the loop catches replicas that come back between writes.
func startRepairLoop(rt *router.Router, every time.Duration) {
	if every <= 0 {
		return
	}
	go func() {
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for range ticker.C {
			ctx, cancel := context.WithTimeout(context.Background(), every)
			report, err := rt.RunRepair(ctx)
			cancel()
			switch {
			case err != nil:
				slog.Warn("repair pass failed", "err", err)
			case report.InSync:
				// Quiet when healthy.
			default:
				for _, n := range report.Nodes {
					if n.Backfilled > 0 || n.ReverseBackfilled > 0 || n.Err != "" {
						slog.Info("repair backfilled a node", "node", n.Index, "name", n.Name,
							"backfilled", n.Backfilled, "seq_before", n.Before, "seq_after", n.After,
							"reverse", n.ReverseBackfilled, "full_sync", n.FullSync, "err", n.Err)
					}
				}
			}
		}
	}()
}

// snapshotInfo converts load metadata to the /healthz report.
func snapshotInfo(path string, meta *snapshot.Meta) *server.SnapshotInfo {
	info := &server.SnapshotInfo{
		Path:          path,
		FormatVersion: meta.FormatVersion,
		BuildSeed:     meta.BuildSeed,
		Entities:      meta.Entities,
		Reviews:       meta.Reviews,
		Extractions:   meta.Extractions,
		FileBytes:     meta.FileBytes,
		LoadMillis:    float64(meta.LoadDuration.Microseconds()) / 1000,
	}
	if meta.Shard != nil {
		info.Entities = meta.Shard.Entities
		info.Shard = &server.ShardInfo{
			Index:         meta.Shard.Index,
			Count:         meta.Shard.Count,
			Entities:      meta.Shard.Entities,
			TotalEntities: meta.Shard.TotalEntities,
			FirstEntity:   meta.Shard.FirstEntity,
			LastEntity:    meta.Shard.LastEntity,
		}
	}
	return info
}

// serve runs the HTTP server until interrupted.
func serve(addr string, handler http.Handler) {
	httpSrv := &http.Server{Addr: addr, Handler: logRequests(handler)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	slog.Info("serving", "addr", addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("serve failed", "err", err)
	}
	slog.Info("shut down")
}

// entityNamer resolves display names from the Entities relation's "name"
// column, which works identically whether the database was built in
// process or loaded from a snapshot.
func entityNamer(db *core.DB) func(id string) string {
	return func(id string) string {
		v, err := db.ObjectiveValue(id, "name")
		if err != nil {
			return ""
		}
		if name, ok := v.(string); ok {
			return name
		}
		return ""
	}
}

// logRequests is a minimal access-log middleware. Requests that arrive
// with a propagated trace id (a router's scatter legs, or a traced
// client) log it, so one slow request correlates from access log to
// /debug/traces in a single grep.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		args := []any{"method", r.Method, "uri", r.URL.RequestURI(),
			"ms", float64(time.Since(start).Microseconds()) / 1000}
		if id := r.Header.Get(trace.TraceHeader); id != "" {
			args = append(args, "trace", id)
		}
		slog.Info("request", args...)
	})
}
