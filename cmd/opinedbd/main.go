// Command opinedbd is the always-on OpineDB server. With -snapshot it is
// the serving half of the build-once / serve-many split: it loads a
// snapshot artifact written by opinedbb (mmap-or-read) and serves
// immediately — cold start in milliseconds instead of rebuilding the
// corpus. When the snapshot file does not exist (or no -snapshot is
// given) it falls back to the in-process build: generate a corpus for
// the chosen domain and run the parallel construction pipeline. Either
// way it then serves the HTTP JSON API of internal/server until
// interrupted.
//
// Examples:
//
//	opinedbb -domain hotel -o hotel.snap && opinedbd -snapshot hotel.snap
//	opinedbd -addr :8080 -domain hotel
//	curl 'localhost:8080/query?sql=select+*+from+Hotels+where+"has+really+clean+rooms"&k=5'
//	curl 'localhost:8080/healthz'   # reports snapshot format version, build seed, load time
package main

import (
	"context"
	"errors"
	"flag"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/server"
	"repro/internal/snapshot"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	snapPath := flag.String("snapshot", "", "snapshot artifact to serve (written by opinedbb); falls back to an in-process build when the file does not exist")
	domain := flag.String("domain", "hotel", "corpus domain for the in-process build: hotel or restaurant")
	seed := flag.Int64("seed", 1, "corpus and build seed (in-process build)")
	small := flag.Bool("small", false, "build a small corpus (faster startup; in-process build)")
	workers := flag.Int("workers", 0, "build worker pool size (0 = GOMAXPROCS; in-process build)")
	subindex := flag.Bool("subindex", true, "build the Appendix B substitution index (in-process build; match opinedbb's flag so a fallen-back replica serves identically to its snapshot-loaded peers)")
	tagged := flag.Int("tagged", 800, "gold sentences for extractor training (in-process build; match opinedbb's flag)")
	labels := flag.Int("labels", 800, "membership-function training labels (in-process build; match opinedbb's flag)")
	topK := flag.Int("k", 10, "default result size")
	flag.Parse()

	var (
		db       *core.DB
		snapInfo *server.SnapshotInfo
	)
	if *snapPath != "" {
		loaded, meta, err := snapshot.Load(*snapPath)
		switch {
		case err == nil:
			db = loaded
			snapInfo = &server.SnapshotInfo{
				Path:          *snapPath,
				FormatVersion: meta.FormatVersion,
				BuildSeed:     meta.BuildSeed,
				Entities:      meta.Entities,
				Reviews:       meta.Reviews,
				Extractions:   meta.Extractions,
				FileBytes:     meta.FileBytes,
				LoadMillis:    float64(meta.LoadDuration.Microseconds()) / 1000,
			}
			log.Printf("loaded snapshot %s: %s, %d entities, %d reviews, %d extractions, seed %d (%.1fms)",
				*snapPath, meta.Name, meta.Entities, meta.Reviews, meta.Extractions,
				meta.BuildSeed, snapInfo.LoadMillis)
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("snapshot %s not found; falling back to in-process build", *snapPath)
		default:
			// A present-but-unusable artifact is an operator problem;
			// silently rebuilding would mask it across a fleet.
			log.Fatalf("snapshot %s: %v", *snapPath, err)
		}
	}

	if db == nil {
		// Build through the same helper as opinedbb with matching flags, so
		// a replica that fell back serves the same database its peers
		// loaded from a snapshot of the same domain/size/seed.
		log.Printf("generating %s corpus and building subjective database...", *domain)
		start := time.Now()
		d, built, err := harness.BuildDomain(*domain, *small, *seed, *workers, *tagged, *labels, *subindex)
		if err != nil {
			log.Fatalf("build: %v", err)
		}
		db = built
		log.Printf("ready: %d entities, %d reviews, %d extractions, %d subjective attributes (%.1fs)",
			len(d.Entities), len(d.Reviews), len(db.Extractions), len(db.Attrs),
			time.Since(start).Seconds())
	}

	srv := server.New(db, server.Options{
		DefaultTopK: *topK,
		EntityName:  entityNamer(db),
		Snapshot:    snapInfo,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: logRequests(srv)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// entityNamer resolves display names from the Entities relation's "name"
// column, which works identically whether the database was built in
// process or loaded from a snapshot.
func entityNamer(db *core.DB) func(id string) string {
	return func(id string) string {
		v, err := db.ObjectiveValue(id, "name")
		if err != nil {
			return ""
		}
		if name, ok := v.(string); ok {
			return name
		}
		return ""
	}
}

// logRequests is a minimal access-log middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s (%.1fms)", r.Method, r.URL.RequestURI(), float64(time.Since(start).Microseconds())/1000)
	})
}
